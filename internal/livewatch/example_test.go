package livewatch_test

import (
	"fmt"
	"os"
	"path/filepath"

	"cryptodrop/internal/core"
	"cryptodrop/internal/livewatch"
)

// ExampleAnalyzer scores a simulated bulk encryption of a real directory
// without the background watcher, driving the scanner by hand.
func ExampleAnalyzer() {
	dir, err := os.MkdirTemp("", "livewatch-example-")
	if err != nil {
		fmt.Println("tempdir:", err)
		return
	}
	defer os.RemoveAll(dir)

	// A handful of user documents.
	var paths []string
	for i := 0; i < 12; i++ {
		p := filepath.Join(dir, fmt.Sprintf("doc%02d.txt", i))
		var content []byte
		for line := 0; len(content) < 2048; line++ {
			content = append(content, []byte(fmt.Sprintf(
				"day %d line %d: meeting summary, expense total %d, follow-up %x.\n",
				i, line, line*73+i, line*line))...)
		}
		if err := os.WriteFile(p, content, 0o644); err != nil {
			fmt.Println("write:", err)
			return
		}
		paths = append(paths, p)
	}

	alerted := false
	ecfg := core.DefaultConfig("")
	ecfg.NonUnionThreshold = 100
	a := livewatch.NewAnalyzer(livewatch.AnalyzerConfig{
		Engine:  &ecfg,
		OnAlert: func(livewatch.Alert) { alerted = true },
	})
	for _, p := range paths {
		a.Prime(p)
	}

	// "Ransomware" rewrites every document as keystream bytes.
	state := uint64(1)
	for _, p := range paths {
		enc := make([]byte, 2048)
		for i := range enc {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			enc[i] = byte(state)
		}
		a.ApplyChange(p, enc, livewatch.EventModified)
	}
	fmt.Println("alerted:", alerted)
	fmt.Println("union indication:", a.Union())
	// Output:
	// alerted: true
	// union indication: true
}
