// Package indicator is the indicator layer of the detection pipeline: the
// catalogue of behavioural signals the engine scores. Each indicator is a
// self-contained Unit that declares, in one place, everything the rest of
// the system derives from it — its ID, its human-readable name (used by
// String, telemetry series and flight-recorder entries), its class (primary
// indicators participate in union indication), the measurement features it
// consumes, the evaluation hooks it listens on and its default point
// values. The engine owns measurement (package core extracts features from
// the event stream) and the policy layer owns detection (package policy
// fuses awards into a verdict); a Unit only maps measured features to score
// contributions.
//
// The five paper indicators (CryptoLock §III) form the Default registry.
// Additional signals — the SentryFS-style Honeyfile unit shipped here, or
// units defined outside this package — are composed in per Config, not by
// editing the engine: Default().With(unit) yields a new registry, and
// Without(id) removes units for ablation studies. A Unit must not import
// the engine; it sees the engine only through the Context interface.
package indicator

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ID identifies one behavioural indicator. IDs order the dispatch of units
// that share a hook, so scoring is a function of the registry's contents,
// never of its registration order.
type ID int

// The built-in indicators. TypeChange, Similarity and EntropyDelta are the
// paper's primary indicators; Deletion and Funneling its secondary ones
// (§III-D). Honeyfile is the opt-in SentryFS-style decoy-touch signal and is
// not part of the default registry.
const (
	TypeChange ID = iota + 1
	Similarity
	EntropyDelta
	Deletion
	Funneling
	Honeyfile
)

// String returns the indicator's declared name ("unknown" for IDs no
// built-in unit declares). Names are never written twice: String, telemetry
// series labels and flight-recorder entries all read the same declaration.
func (i ID) String() string {
	if name, ok := builtinNames[i]; ok {
		return name
	}
	return "unknown"
}

// Class separates the paper's indicator tiers.
type Class int

const (
	// Primary indicators carry union indication (§III-E).
	Primary Class = iota + 1
	// Secondary indicators add evidence but do not gate union.
	Secondary
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Primary:
		return "primary"
	case Secondary:
		return "secondary"
	default:
		return "unknown"
	}
}

// Feature is a bit set naming the measurement-layer products a unit
// consumes. The engine unions the feature sets of the registered units and
// skips extracting anything nobody declared — disabling every
// content-dependent indicator really does stop the engine reading file
// content.
type Feature uint32

const (
	// FeatContent is measured file content: the magic type, similarity
	// digest and Shannon entropy of a protected file's previous and new
	// versions, read through the ContentSource.
	FeatContent Feature = 1 << iota
	// FeatPayload is the read/write payload stream: the weighted entropy
	// delta between what a process reads and what it writes. It is the
	// feature a payload-blind backend (or a degraded host session) cannot
	// supply.
	FeatPayload
	// FeatTypeSniff is offset-0 read type identification: the distinct
	// type sets behind funneling.
	FeatTypeSniff
	// FeatCreator is file-creator bookkeeping: who created each file,
	// distinguishing own-temp-file deletion from destruction of user data.
	FeatCreator
)

// Has reports whether f contains all bits of want.
func (f Feature) Has(want Feature) bool { return f&want == want }

// Hook names a fixed evaluation point in the engine's scoring flow. The
// engine decides when each hook runs (that sequencing is part of the
// measurement layer's contract); units decide what to conclude there.
type Hook int

const (
	// HookWrite runs after a payload write folded into the stream
	// measurements.
	HookWrite Hook = iota + 1
	// HookClose runs when a written handle closes, whether or not the
	// file's content could be read — the touch-level signal.
	HookClose
	// HookDelete runs when a protected file is removed.
	HookDelete
	// HookRename runs for each protected-tree side of a rename: once for
	// the source path when it lies in the tree, once for the destination
	// path when it does. Like HookClose it is a touch-level signal,
	// dispatched whether or not the rename led to a measured
	// transformation.
	HookRename
	// HookFunnel runs after the process's distinct read/write type sets
	// changed.
	HookFunnel
	// HookNewFile runs when a brand-new file's measurement completes (no
	// previous version exists).
	HookNewFile
	// HookTransform runs when a completed rewrite is measured against the
	// file's cached previous version.
	HookTransform

	// HookMax is the highest hook value; dispatch tables size off it.
	HookMax = HookTransform
)

// Decl is a unit's static declaration: the single source the engine,
// telemetry, String() and DefaultPoints all derive from.
type Decl struct {
	// ID is the indicator's identity in scoreboards and detections.
	ID ID
	// Name labels the indicator everywhere a string is needed.
	Name string
	// Class is the indicator's tier.
	Class Class
	// Features are the measurement products the unit's Eval consumes.
	Features Feature
	// Hooks are the evaluation points the unit listens on.
	Hooks []Hook
	// Once limits the unit to a single award per scoring group.
	Once bool
	// DefaultPoints writes the unit's calibrated default score values into
	// a Points table; nil when the unit reads no Points field.
	DefaultPoints func(*Points)
}

// Unit is one pluggable indicator: a declaration plus the evaluation that
// turns measured features into a score contribution. Eval runs with the
// scoring group's lock held and must not retain ctx.
type Unit interface {
	// Decl returns the unit's static declaration.
	Decl() Decl
	// Eval inspects the measured state at hook h and returns the points to
	// award. fired=false awards nothing.
	Eval(h Hook, ctx Context) (points float64, fired bool)
}

// Context is the window a Unit gets onto the engine's measured state for
// the operation being scored. It exposes semantic predicates over the
// measurement layer's features rather than raw structures, so units stay
// independent of the engine's internals (and of each other).
type Context interface {
	// Points returns the engine's per-indicator score table.
	Points() Points
	// Path is the protected file path that triggered the hook.
	Path() string

	// StreamDeltaSuspicious reports whether the process's write-minus-read
	// weighted entropy delta currently exceeds the configured threshold
	// (FeatPayload).
	StreamDeltaSuspicious() bool
	// PayloadStreamAvailable reports whether the backend delivers the
	// read/write payload stream at all. Payload-blind backends and degraded
	// host sessions return false; units gating on FeatPayload-derived
	// evidence should waive those gates when the feature cannot exist.
	PayloadStreamAvailable() bool

	// TypeChanged reports whether the rewrite changed the file's magic type
	// (HookTransform, FeatContent).
	TypeChanged() bool
	// Dissimilar reports whether the new content is completely dissimilar
	// from the previous version's reliable similarity digest
	// (HookTransform, FeatContent).
	Dissimilar() bool
	// FileEntropyDelta returns the rewrite's file-level entropy increase
	// (HookTransform, FeatContent).
	FileEntropyDelta() float64
	// EntropyDeltaThreshold returns the configured suspicious Δe bound.
	EntropyDeltaThreshold() float64
	// NewFileCipherLike reports whether a brand-new file's content is
	// untyped high-entropy data — the shape of an encrypted copy
	// (HookNewFile, FeatContent).
	NewFileCipherLike() bool

	// DeletedOwnFile reports whether the deleted file was created by the
	// acting process itself (HookDelete, FeatCreator).
	DeletedOwnFile() bool

	// TypesRead and TypesWritten return the sizes of the process's distinct
	// read/written type sets (HookFunnel, FeatTypeSniff).
	TypesRead() int
	TypesWritten() int
	// FunnelingThreshold returns the configured read-over-write type excess.
	FunnelingThreshold() int
}

// Registry is an immutable set of indicator units. Composition (With,
// Without) returns new registries, so a registry can be shared across
// engines; Units always returns the units in canonical ID order, making
// every derived behaviour independent of registration order.
type Registry struct {
	units []Unit
}

// NewRegistry returns a registry holding exactly the given units. Duplicate
// IDs keep the first unit registered under that ID.
func NewRegistry(units ...Unit) *Registry {
	r := &Registry{}
	seen := make(map[ID]bool, len(units))
	for _, u := range units {
		if u == nil || seen[u.Decl().ID] {
			continue
		}
		seen[u.Decl().ID] = true
		r.units = append(r.units, u)
	}
	sort.Slice(r.units, func(i, j int) bool { return r.units[i].Decl().ID < r.units[j].Decl().ID })
	return r
}

// Default returns the paper's indicator set: the three primary and two
// secondary units of CryptoLock §III.
func Default() *Registry {
	return NewRegistry(typeChangeUnit{}, similarityUnit{}, entropyDeltaUnit{}, deletionUnit{}, funnelingUnit{})
}

// With returns a new registry with the given units added (existing IDs are
// replaced).
func (r *Registry) With(units ...Unit) *Registry {
	merged := make([]Unit, 0, len(r.units)+len(units))
	replaced := make(map[ID]bool, len(units))
	for _, u := range units {
		if u != nil {
			replaced[u.Decl().ID] = true
		}
	}
	for _, u := range r.units {
		if !replaced[u.Decl().ID] {
			merged = append(merged, u)
		}
	}
	merged = append(merged, units...)
	return NewRegistry(merged...)
}

// Without returns a new registry with the units of the given IDs removed.
func (r *Registry) Without(ids ...ID) *Registry {
	drop := make(map[ID]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	var kept []Unit
	for _, u := range r.units {
		if !drop[u.Decl().ID] {
			kept = append(kept, u)
		}
	}
	return NewRegistry(kept...)
}

// Units returns the registered units in canonical ID order. The returned
// slice must not be mutated.
func (r *Registry) Units() []Unit {
	if r == nil {
		return nil
	}
	return r.units
}

// Features returns the union of the registered units' feature needs — the
// measurement work the engine must perform for this registry.
func (r *Registry) Features() Feature {
	var f Feature
	for _, u := range r.Units() {
		f |= u.Decl().Features
	}
	return f
}

// IDs returns the registered indicator IDs in canonical order.
func (r *Registry) IDs() []ID {
	units := r.Units()
	ids := make([]ID, 0, len(units))
	for _, u := range units {
		ids = append(ids, u.Decl().ID)
	}
	return ids
}

// Len returns the number of registered units.
func (r *Registry) Len() int { return len(r.Units()) }

// Fingerprint returns a stable hash of the registry's canonical
// declaration set: IDs, names, classes, feature needs, hooks and the
// once-latch of every unit, in canonical order. Two registries score
// identically structured pipelines iff their fingerprints match (point
// values live in the engine config, not the registry), which is what audit
// bundles record to tie a verdict to the unit set that produced it.
func (r *Registry) Fingerprint() string {
	h := fnv.New64a()
	for _, u := range r.Units() {
		d := u.Decl()
		fmt.Fprintf(h, "%d:%s:%d:%d:%v:%t;", d.ID, d.Name, d.Class, d.Features, d.Hooks, d.Once)
	}
	return fmt.Sprintf("reg1-%016x", h.Sum64())
}

// Primaries lists the paper's three primary indicators — the set whose
// union triggers accelerated detection under the default policy. The list
// is intentionally independent of any particular registry: ablating a
// primary out of the registry must leave union unattainable (the paper's
// union is over these three signals), not quietly shrink the requirement.
func Primaries() []ID {
	return []ID{TypeChange, Similarity, EntropyDelta}
}
