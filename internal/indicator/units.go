package indicator

// The five paper indicators, each a self-contained unit. The calibrated
// default point values (CryptoLock §IV) live in the declarations below and
// nowhere else: DefaultPoints, ID.String and the telemetry series names are
// all derived from this file.

type typeChangeUnit struct{}

func (typeChangeUnit) Decl() Decl {
	return Decl{
		ID:       TypeChange,
		Name:     "file-type-change",
		Class:    Primary,
		Features: FeatContent,
		Hooks:    []Hook{HookTransform},
		DefaultPoints: func(p *Points) {
			p.TypeChange = 8
		},
	}
}

// Eval awards when a rewrite left the file with a different magic type than
// its previous version (§III-A).
func (typeChangeUnit) Eval(h Hook, ctx Context) (float64, bool) {
	if ctx.TypeChanged() {
		return ctx.Points().TypeChange, true
	}
	return 0, false
}

type similarityUnit struct{}

func (similarityUnit) Decl() Decl {
	return Decl{
		ID:       Similarity,
		Name:     "similarity",
		Class:    Primary,
		Features: FeatContent,
		Hooks:    []Hook{HookTransform},
		DefaultPoints: func(p *Points) {
			p.Similarity = 8
		},
	}
}

// Eval awards when the rewritten content shares nothing with the previous
// version's similarity digest — encryption leaves no common features
// (§III-B). Unreliable digests (tiny files) never fire.
func (similarityUnit) Eval(h Hook, ctx Context) (float64, bool) {
	if ctx.Dissimilar() {
		return ctx.Points().Similarity, true
	}
	return 0, false
}

type entropyDeltaUnit struct{}

func (entropyDeltaUnit) Decl() Decl {
	return Decl{
		ID:       EntropyDelta,
		Name:     "entropy-delta",
		Class:    Primary,
		Features: FeatContent | FeatPayload,
		Hooks:    []Hook{HookWrite, HookNewFile, HookTransform},
		DefaultPoints: func(p *Points) {
			p.EntropyDeltaFile = 4
			p.EntropyDeltaOp = 0.25
			p.NewCipherFile = 3
		},
	}
}

// Eval accumulates the paper's entropy evidence (§III-C) at three points:
// per-write stream deltas while the process writes higher-entropy data than
// it reads, a file-level award when a rewrite raised the file's entropy past
// the configured threshold, and a new-cipher award when a brand-new file
// looks like an encrypted copy. The new-cipher gate normally requires the
// suspicious stream delta as corroboration; when the backend cannot supply
// the payload stream at all (payload-blind watchers, degraded host
// sessions), the gate is waived — the corroborating feature cannot exist.
func (entropyDeltaUnit) Eval(h Hook, ctx Context) (float64, bool) {
	switch h {
	case HookWrite:
		if ctx.StreamDeltaSuspicious() {
			return ctx.Points().EntropyDeltaOp, true
		}
	case HookNewFile:
		if ctx.NewFileCipherLike() && (ctx.StreamDeltaSuspicious() || !ctx.PayloadStreamAvailable()) {
			return ctx.Points().NewCipherFile, true
		}
	case HookTransform:
		if ctx.FileEntropyDelta() >= ctx.EntropyDeltaThreshold() {
			return ctx.Points().EntropyDeltaFile, true
		}
	}
	return 0, false
}

type deletionUnit struct{}

func (deletionUnit) Decl() Decl {
	return Decl{
		ID:       Deletion,
		Name:     "deletion",
		Class:    Secondary,
		Features: FeatCreator,
		Hooks:    []Hook{HookDelete},
		DefaultPoints: func(p *Points) {
			p.Deletion = 12
			p.DeletionOwn = 0.5
		},
	}
}

// Eval awards for every protected-file deletion (§III-D): heavily when the
// process destroys a file someone else created, nominally when it cleans up
// a file it created itself (temp-file churn).
func (deletionUnit) Eval(h Hook, ctx Context) (float64, bool) {
	if ctx.DeletedOwnFile() {
		return ctx.Points().DeletionOwn, true
	}
	return ctx.Points().Deletion, true
}

type funnelingUnit struct{}

func (funnelingUnit) Decl() Decl {
	return Decl{
		ID:       Funneling,
		Name:     "funneling",
		Class:    Secondary,
		Features: FeatContent | FeatTypeSniff,
		Hooks:    []Hook{HookFunnel},
		Once:     true,
		DefaultPoints: func(p *Points) {
			p.Funneling = 25
		},
	}
}

// Eval awards once when the process has read many distinct file types but
// written few (§III-D): the many-in, few-out shape of ransomware funneling
// documents into ciphertext containers. A process that has written nothing
// yet is not funneling — it is only reading.
func (funnelingUnit) Eval(h Hook, ctx Context) (float64, bool) {
	if ctx.TypesWritten() == 0 {
		return 0, false
	}
	if ctx.TypesRead()-ctx.TypesWritten() >= ctx.FunnelingThreshold() {
		return ctx.Points().Funneling, true
	}
	return 0, false
}

// builtins returns the declarations of every unit shipped in this package —
// the default five plus the opt-in Honeyfile — for deriving names and
// default points.
func builtins() []Decl {
	decls := make([]Decl, 0, 6)
	for _, u := range Default().Units() {
		decls = append(decls, u.Decl())
	}
	decls = append(decls, NewHoneyfile().Decl())
	return decls
}

// Builtins returns the static declarations of every indicator unit shipped
// in this package, in ID order. Tests use it to pin that derived artefacts
// (names, telemetry series, point tables) cannot drift from the source
// declarations.
func Builtins() []Decl { return builtins() }

var builtinNames = func() map[ID]string {
	m := make(map[ID]string, 6)
	for _, d := range builtins() {
		m[d.ID] = d.Name
	}
	return m
}()
