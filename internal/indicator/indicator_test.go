package indicator

import (
	"reflect"
	"testing"
)

// fakeContext is a canned Context for unit-level Eval tests.
type fakeContext struct {
	points     Points
	path       string
	typeChange bool
	dissimilar bool
	fileDelta  float64
	deltaSusp  bool
	payload    bool
	newCipher  bool
	ownDelete  bool
	typesRead  int
	typesWrote int
}

func (f *fakeContext) Points() Points                { return f.points }
func (f *fakeContext) Path() string                  { return f.path }
func (f *fakeContext) StreamDeltaSuspicious() bool   { return f.deltaSusp }
func (f *fakeContext) PayloadStreamAvailable() bool  { return f.payload }
func (f *fakeContext) TypeChanged() bool             { return f.typeChange }
func (f *fakeContext) Dissimilar() bool              { return f.dissimilar }
func (f *fakeContext) FileEntropyDelta() float64     { return f.fileDelta }
func (f *fakeContext) EntropyDeltaThreshold() float64 { return 0.1 }
func (f *fakeContext) NewFileCipherLike() bool       { return f.newCipher }
func (f *fakeContext) DeletedOwnFile() bool          { return f.ownDelete }
func (f *fakeContext) TypesRead() int                { return f.typesRead }
func (f *fakeContext) TypesWritten() int             { return f.typesWrote }
func (f *fakeContext) FunnelingThreshold() int       { return 5 }

// TestStringMatchesDecl pins that ID.String always returns the name the
// unit declares — the anti-drift contract: names are written once, in the
// declaration.
func TestStringMatchesDecl(t *testing.T) {
	for _, d := range Builtins() {
		if got := d.ID.String(); got != d.Name {
			t.Errorf("ID %d: String() = %q, declaration says %q", d.ID, got, d.Name)
		}
	}
	if got := ID(99).String(); got != "unknown" {
		t.Errorf("undeclared ID String() = %q, want unknown", got)
	}
}

// TestDefaultPointsDerivedFromDecls pins both directions of the points
// contract: the table is exactly what the declarations produce, and the
// declarations carry the paper's calibrated values.
func TestDefaultPointsDerivedFromDecls(t *testing.T) {
	var fromDecls Points
	for _, d := range Builtins() {
		if d.DefaultPoints != nil {
			d.DefaultPoints(&fromDecls)
		}
	}
	if got := DefaultPoints(); got != fromDecls {
		t.Fatalf("DefaultPoints() = %+v, declarations produce %+v", got, fromDecls)
	}
	want := Points{
		TypeChange: 8, Similarity: 8, EntropyDeltaFile: 4, EntropyDeltaOp: 0.25,
		Deletion: 12, DeletionOwn: 0.5, NewCipherFile: 3, Funneling: 25,
		UnionBonus: 0, Honeyfile: 200,
	}
	if got := DefaultPoints(); got != want {
		t.Fatalf("calibrated defaults drifted: got %+v, want %+v", got, want)
	}
}

// TestRegistryCanonicalOrder pins that registration order never matters:
// any permutation yields the same canonical unit order, and duplicate IDs
// keep the first unit.
func TestRegistryCanonicalOrder(t *testing.T) {
	def := Default().Units()
	perm := []Unit{def[3], def[0], def[4], def[2], def[1]}
	r := NewRegistry(perm...)
	want := []ID{TypeChange, Similarity, EntropyDelta, Deletion, Funneling}
	if got := r.IDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("permuted registration IDs = %v, want %v", got, want)
	}

	first := NewHoneyfile("/a")
	second := NewHoneyfile("/b")
	dup := NewRegistry(first, second)
	if dup.Len() != 1 {
		t.Fatalf("duplicate IDs: Len = %d, want 1", dup.Len())
	}
	if dup.Units()[0].(*HoneyfileUnit) != first {
		t.Fatal("duplicate IDs should keep the first unit registered")
	}
}

// TestWithWithoutImmutable pins composition semantics: With replaces by ID,
// Without removes, and neither mutates the receiver.
func TestWithWithoutImmutable(t *testing.T) {
	base := Default()
	honey := NewHoneyfile("/decoy")

	added := base.With(honey)
	if added.Len() != 6 || base.Len() != 5 {
		t.Fatalf("With: added.Len=%d base.Len=%d, want 6 and 5", added.Len(), base.Len())
	}

	replacement := NewHoneyfile("/other")
	replaced := added.With(replacement)
	if replaced.Len() != 6 {
		t.Fatalf("With same ID: Len = %d, want 6", replaced.Len())
	}
	for _, u := range replaced.Units() {
		if h, ok := u.(*HoneyfileUnit); ok && h != replacement {
			t.Fatal("With should replace the unit registered under the same ID")
		}
	}

	trimmed := base.Without(TypeChange, Funneling)
	if got, want := trimmed.IDs(), []ID{Similarity, EntropyDelta, Deletion}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Without IDs = %v, want %v", got, want)
	}
	if base.Len() != 5 {
		t.Fatal("Without mutated its receiver")
	}
}

// TestFeaturesUnion pins the registry's feature aggregation — what the
// measurement layer derives its work from.
func TestFeaturesUnion(t *testing.T) {
	all := FeatContent | FeatPayload | FeatTypeSniff | FeatCreator
	if got := Default().Features(); got != all {
		t.Fatalf("Default().Features() = %b, want %b", got, all)
	}
	delOnly := Default().Without(TypeChange, Similarity, EntropyDelta, Funneling)
	if got := delOnly.Features(); got != FeatCreator {
		t.Fatalf("deletion-only Features() = %b, want FeatCreator", got)
	}
	if got := NewRegistry(NewHoneyfile("/d")).Features(); got != 0 {
		t.Fatalf("honeyfile-only Features() = %b, want 0 (content-free)", got)
	}
}

// TestPrimariesIndependentOfRegistry pins that the union requirement is the
// paper's three primary signals, regardless of registry composition:
// ablating a primary must leave union unattainable, not shrink it.
func TestPrimariesIndependentOfRegistry(t *testing.T) {
	want := []ID{TypeChange, Similarity, EntropyDelta}
	if got := Primaries(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Primaries() = %v, want %v", got, want)
	}
	for _, d := range Builtins() {
		primary := false
		for _, id := range Primaries() {
			if d.ID == id {
				primary = true
			}
		}
		if primary != (d.Class == Primary) {
			t.Errorf("%s: class %v inconsistent with Primaries() membership", d.Name, d.Class)
		}
	}
}

// TestHoneyfileEval pins the decoy unit: exact-path matches fire with the
// configured points on every declared hook, other paths never fire.
func TestHoneyfileEval(t *testing.T) {
	u := NewHoneyfile("/docs/!decoy.txt")
	ctx := &fakeContext{points: DefaultPoints(), path: "/docs/!decoy.txt"}
	for _, h := range u.Decl().Hooks {
		pts, fired := u.Eval(h, ctx)
		if !fired || pts != 200 {
			t.Fatalf("hook %d on decoy path: (%v, %v), want (200, true)", h, pts, fired)
		}
	}
	ctx.path = "/docs/report.txt"
	if _, fired := u.Eval(HookWrite, ctx); fired {
		t.Fatal("honeyfile fired on a non-decoy path")
	}
	decl := u.Decl()
	if decl.Features != 0 {
		t.Fatal("honeyfile must declare no feature needs (content-free)")
	}
	hooks := make(map[Hook]bool, len(decl.Hooks))
	for _, h := range decl.Hooks {
		hooks[h] = true
	}
	for _, h := range []Hook{HookWrite, HookClose, HookRename, HookDelete} {
		if !hooks[h] {
			t.Errorf("honeyfile missing hook %d (needed for class coverage)", h)
		}
	}
}
