package indicator

// Points assigns the per-award score values (the paper's Table ~§IV
// calibration). An indicator's fields here are written by its unit's
// DefaultPoints declaration; UnionBonus belongs to the policy layer (the
// default union policy's acceleration bonus) and is filled in by the engine
// configuration, not by any unit.
type Points struct {
	// TypeChange is awarded when a rewrite changes a file's magic type.
	TypeChange float64
	// Similarity is awarded when rewritten content shares nothing with the
	// previous version's similarity digest.
	Similarity float64
	// EntropyDeltaFile is awarded when a rewrite raises the file's entropy
	// past the configured threshold.
	EntropyDeltaFile float64
	// EntropyDeltaOp is awarded per write while the process's write stream
	// runs higher-entropy than its read stream.
	EntropyDeltaOp float64
	// Deletion is awarded when a process deletes a file it did not create.
	Deletion float64
	// DeletionOwn is awarded when a process deletes its own file.
	DeletionOwn float64
	// NewCipherFile is awarded when a brand-new file is untyped high-entropy
	// data.
	NewCipherFile float64
	// Funneling is awarded once when a process reads many distinct types but
	// writes few.
	Funneling float64
	// UnionBonus is added by the default policy when all primary indicators
	// have fired.
	UnionBonus float64
	// Honeyfile is awarded per touch of a planted decoy file (opt-in unit).
	Honeyfile float64
}

// DefaultPoints returns the point table assembled from the built-in units'
// declarations. UnionBonus is zero here — it is a policy-layer value the
// engine configuration supplies (core.DefaultPoints composes both).
func DefaultPoints() Points {
	var p Points
	for _, d := range builtins() {
		if d.DefaultPoints != nil {
			d.DefaultPoints(&p)
		}
	}
	return p
}
