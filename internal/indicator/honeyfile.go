package indicator

// HoneyfileUnit is the SentryFS-style decoy-touch indicator: a set of
// planted files no legitimate workload has reason to modify, each touch
// worth an instant high score. It needs no measurement features at all
// (Features == 0) — the signal is the path, not the content — so it keeps
// firing on payload-blind backends and degraded host sessions where the
// content-dependent indicators lose their evidence. Not part of the default
// registry; compose it in with Default().With(NewHoneyfile(paths...)) after
// planting the decoys (livewatch.PlantHoneyfiles writes a standard set).
//
// The unit is immutable after construction and safe for concurrent Eval
// across engine shards.
type HoneyfileUnit struct {
	paths map[string]bool
}

// NewHoneyfile returns a honeyfile unit guarding exactly the given decoy
// paths. Paths are matched verbatim against event paths, so plant and guard
// through the same path convention (livewatch uses absolute paths; the VFS
// backend uses root-relative ones).
func NewHoneyfile(paths ...string) *HoneyfileUnit {
	u := &HoneyfileUnit{paths: make(map[string]bool, len(paths))}
	for _, p := range paths {
		u.paths[p] = true
	}
	return u
}

// Paths returns the guarded decoy paths (order unspecified).
func (u *HoneyfileUnit) Paths() []string {
	out := make([]string, 0, len(u.paths))
	for p := range u.paths {
		out = append(out, p)
	}
	return out
}

// Decl declares the honeyfile indicator: secondary class (it scores, it
// does not gate union), zero feature needs, firing on any write, written
// close, rename or delete that names a decoy. The rename hook is what
// catches move-out attacks (Class B), whose only in-tree touches are
// renames.
func (u *HoneyfileUnit) Decl() Decl {
	return Decl{
		ID:       Honeyfile,
		Name:     "honeyfile",
		Class:    Secondary,
		Features: 0,
		Hooks:    []Hook{HookWrite, HookClose, HookRename, HookDelete},
		DefaultPoints: func(p *Points) {
			p.Honeyfile = 200
		},
	}
}

// Eval awards on every touch of a guarded path.
func (u *HoneyfileUnit) Eval(h Hook, ctx Context) (float64, bool) {
	if u.paths[ctx.Path()] {
		return ctx.Points().Honeyfile, true
	}
	return 0, false
}
