package ransomware

import (
	"crypto/sha256"
	"math/rand"
)

// newTestRand returns a deterministic rng for tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// sumSHA256 hashes b.
func sumSHA256(b []byte) []byte {
	s := sha256.Sum256(b)
	return s[:]
}
