package ransomware

import (
	"bytes"
	"testing"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/entropy"
	"cryptodrop/internal/magic"
	"cryptodrop/internal/sdhash"
)

func evasionFixtures(t *testing.T) (plain, cipher []byte) {
	t.Helper()
	plain = corpus.Generate("pdf", 5, 32<<10)
	cipher = newEncryptor(CipherAES, 5).encrypt(plain, 1)
	return plain, cipher
}

func TestPadLowEntropyDefeatsEntropyButNotSimilarity(t *testing.T) {
	plain, cipher := evasionFixtures(t)
	out := applyEvasion(EvadeEntropy, plain, cipher, newTestRand(1))
	// Entropy pulled well below ciphertext levels…
	if e := entropy.Shannon(out); e > 6.5 {
		t.Fatalf("padded entropy %.2f, want < 6.5", e)
	}
	// …but the content is still completely dissimilar to the original.
	dp, err := sdhash.Compute(plain)
	if err != nil {
		t.Fatal(err)
	}
	if do, err := sdhash.Compute(out); err == nil {
		if score := dp.Compare(do); score > 10 {
			t.Fatalf("padded output similarity %d, want near zero", score)
		}
	}
	// And the type still changed (no PDF magic).
	if magic.Identify(out).ID == "pdf" {
		t.Fatal("padding preserved the type")
	}
}

func TestPreserveMagicDefeatsTypeButNotEntropy(t *testing.T) {
	plain, cipher := evasionFixtures(t)
	out := applyEvasion(EvadeTypeChange, plain, cipher, newTestRand(2))
	if magic.Identify(out).ID != "pdf" {
		t.Fatalf("magic not preserved: %s", magic.Identify(out).ID)
	}
	// Body is still ciphertext: entropy stays near max.
	if e := entropy.Shannon(out[512:]); e < 7.8 {
		t.Fatalf("body entropy %.2f, want ciphertext-level", e)
	}
}

func TestKeepPrefixDefeatsSimilarityButKeepsData(t *testing.T) {
	plain, cipher := evasionFixtures(t)
	out := applyEvasion(EvadeSimilarity, plain, cipher, newTestRand(3))
	// 70% of the plaintext survives verbatim…
	cut := len(plain) * 7 / 10
	if !bytes.Equal(out[:cut], plain[:cut]) {
		t.Fatal("prefix not preserved")
	}
	// …so similarity stays high (the indicator is defeated)…
	score, err := sdhash.Similarity(plain, out)
	if err != nil {
		t.Fatal(err)
	}
	if score < 30 {
		t.Fatalf("similarity %d, want high (prefix shared)", score)
	}
	// …and the "attack" barely denies the victim anything.
	if magic.Identify(out).ID != "pdf" {
		t.Fatal("prefix retention should also preserve the type")
	}
}

func TestEvasiveSampleWiring(t *testing.T) {
	base := Sample{ID: "base", Seed: 1, Profile: Profile{Family: "X", Class: ClassA}}
	ev := EvasiveSample(base, EvadeAll)
	if ev.Profile.Evasion != EvadeAll {
		t.Fatal("evasion not set")
	}
	if ev.ID == base.ID {
		t.Fatal("ID not differentiated")
	}
	if base.Profile.Evasion != EvadeNone {
		t.Fatal("base sample mutated")
	}
}

func TestEvasionKindStrings(t *testing.T) {
	for _, k := range EvasionKinds() {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
	if EvasionKind(99).String() != "unknown" {
		t.Fatal("unknown kind misnamed")
	}
}
