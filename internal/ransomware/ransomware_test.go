package ransomware

import (
	"strings"
	"testing"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/entropy"
	"cryptodrop/internal/vfs"
)

func TestRosterMatchesTableI(t *testing.T) {
	roster := Roster(1)
	if len(roster) != 492 {
		t.Fatalf("roster size = %d, want 492", len(roster))
	}
	classCounts := map[Class]int{}
	familyCounts := map[string]int{}
	for _, s := range roster {
		classCounts[s.Profile.Class]++
		familyCounts[s.Profile.Family]++
	}
	if classCounts[ClassA] != 282 || classCounts[ClassB] != 147 || classCounts[ClassC] != 63 {
		t.Fatalf("class counts = %v, want A=282 B=147 C=63", classCounts)
	}
	wantFamilies := map[string]int{
		"CryptoDefense": 18, "CryptoFortress": 2, "CryptoLocker": 31,
		"CryptoLocker (copycat)": 2, "CryptoTorLocker2015": 1, "CryptoWall": 8,
		"CTB-Locker": 122, "Filecoder": 72, "GPcode": 13, "MBL Advisory": 1,
		"PoshCoder": 1, "Ransom-FUE": 1, "TeslaCrypt": 149, "Virlock": 20,
		"Xorist": 51,
	}
	for fam, want := range wantFamilies {
		if familyCounts[fam] != want {
			t.Errorf("family %s: %d samples, want %d", fam, familyCounts[fam], want)
		}
	}
	if len(FamilyNames()) != 15 { // 14 families + generically-labelled Ransom-FUE
		t.Fatalf("FamilyNames = %d entries", len(FamilyNames()))
	}
}

func TestRosterClassCDisposalSplit(t *testing.T) {
	// 41 of 63 Class C samples move the new file over the original; 22
	// delete it (§V-B2).
	moveOver, deletes := 0, 0
	for _, s := range Roster(1) {
		if s.Profile.Class != ClassC {
			continue
		}
		if s.Profile.MoveOverOriginal {
			moveOver++
		} else {
			deletes++
		}
	}
	if moveOver != 41 || deletes != 22 {
		t.Fatalf("Class C disposal split = %d move-over / %d delete, want 41/22", moveOver, deletes)
	}
}

func TestRosterDeterministic(t *testing.T) {
	a, b := Roster(5), Roster(5)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Seed != b[i].Seed {
			t.Fatalf("roster not deterministic at %d", i)
		}
	}
	c := Roster(6)
	if a[0].Seed == c[0].Seed {
		t.Fatal("different roster seeds produced identical sample seeds")
	}
}

// buildVictim creates a small corpus.
func buildVictim(t *testing.T) (*vfs.FS, *corpus.Manifest) {
	t.Helper()
	fs := vfs.New()
	m, err := corpus.Build(fs, corpus.Spec{Seed: 3, Files: 120, Dirs: 15, SizeScale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return fs, m
}

// countModified compares the manifest hashes against the filesystem.
func countModified(t *testing.T, fs *vfs.FS, m *corpus.Manifest) (lost int) {
	t.Helper()
	for _, e := range m.Entries {
		content, err := fs.ReadFileRaw(e.Path)
		if err != nil {
			lost++ // deleted or renamed away
			continue
		}
		sum := sha256Of(content)
		if sum != e.SHA256 {
			lost++
		}
	}
	return lost
}

func sha256Of(b []byte) [32]byte {
	var s [32]byte
	copy(s[:], sumSHA256(b))
	return s
}

func TestClassAEncryptsEverything(t *testing.T) {
	fs, m := buildVictim(t)
	s := Sample{ID: "test-A", Seed: 9, Profile: Profile{
		Family: "TestFam", Class: ClassA, Traversal: TraverseShuffled,
		Cipher: CipherAES, ChunkKB: 16,
	}}
	res, err := s.Run(fs, 100, m.Root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Suspended {
		t.Fatalf("unexpected result: %+v", res)
	}
	lost := countModified(t, fs, m)
	// All non-read-only targeted files should be encrypted.
	if lost < len(m.Entries)*3/4 {
		t.Fatalf("only %d of %d files modified by unimpeded Class A", lost, len(m.Entries))
	}
	// Encrypted content must be high-entropy (checked on files large
	// enough for byte entropy to saturate).
	var checked bool
	for _, e := range m.Entries {
		if e.ReadOnly || e.Size < 8192 {
			continue
		}
		content, err := fs.ReadFileRaw(e.Path)
		if err != nil {
			continue
		}
		if ent := entropy.Shannon(content); ent < 7.5 {
			t.Fatalf("%s entropy %.2f after encryption, want ≥ 7.5", e.Path, ent)
		}
		checked = true
		break
	}
	if !checked {
		t.Fatal("no encrypted file verified")
	}
}

func TestClassBMovesThroughTemp(t *testing.T) {
	fs, m := buildVictim(t)
	s := Sample{ID: "test-B", Seed: 10, Profile: Profile{
		Family: "TestFam", Class: ClassB, Traversal: TraverseShuffled,
		Cipher: CipherAES, RenameExt: ".locked", TempDir: "/Windows/Temp", ChunkKB: 16,
	}}
	res, err := s.Run(fs, 100, m.Root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesAttacked == 0 {
		t.Fatal("no files attacked")
	}
	// Originals replaced by .locked files.
	locked := 0
	err = fs.Walk(m.Root, func(info vfs.FileInfo) error {
		if strings.HasSuffix(info.Path, ".locked") {
			locked++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if locked != res.FilesAttacked {
		t.Fatalf("%d .locked files, want %d", locked, res.FilesAttacked)
	}
	// Temp dir must be empty again (files moved back).
	infos, err := fs.List("/Windows/Temp")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("%d files left in temp", len(infos))
	}
}

func TestClassCDeleteLeavesEncryptedCopies(t *testing.T) {
	fs, m := buildVictim(t)
	s := Sample{ID: "test-C", Seed: 11, Profile: Profile{
		Family: "TestFam", Class: ClassC, Traversal: TraverseTopDown,
		Cipher: CipherRC4, RenameExt: ".enc", ChunkKB: 16,
	}}
	res, err := s.Run(fs, 100, m.Root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesAttacked == 0 {
		t.Fatal("no files attacked")
	}
	encCount := 0
	err = fs.Walk(m.Root, func(info vfs.FileInfo) error {
		if strings.HasSuffix(info.Path, ".enc") {
			encCount++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if encCount != res.FilesAttacked {
		t.Fatalf("%d .enc files, want %d", encCount, res.FilesAttacked)
	}
}

func TestReadOnlyQuirk(t *testing.T) {
	// A CannotHandleReadOnly sample must fail to dispose of read-only
	// originals; a normal sample clears the attribute and succeeds.
	run := func(quirk bool) (remaining int) {
		fs := vfs.New()
		m, err := corpus.Build(fs, corpus.Spec{Seed: 4, Files: 60, Dirs: 8, SizeScale: 0.2, ReadOnlyFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		s := Sample{ID: "test-ro", Seed: 12, Profile: Profile{
			Family: "GPcodeish", Class: ClassC, Traversal: TraverseTopDown,
			Cipher: CipherRC4, RenameExt: ".pwn", CannotHandleReadOnly: quirk, ChunkKB: 16,
		}}
		if _, err := s.Run(fs, 100, m.Root, nil); err != nil {
			t.Fatal(err)
		}
		for _, e := range m.Entries {
			if !e.ReadOnly {
				continue
			}
			if content, err := fs.ReadFileRaw(e.Path); err == nil {
				if sha256Of(content) == e.SHA256 {
					remaining++
				}
			}
		}
		return remaining
	}
	if got := run(true); got == 0 {
		t.Fatal("quirky sample disposed of read-only originals")
	}
	if got := run(false); got != 0 {
		t.Fatalf("normal sample left %d read-only originals", got)
	}
}

func TestStopHaltsSample(t *testing.T) {
	fs, m := buildVictim(t)
	s := Sample{ID: "test-stop", Seed: 13, Profile: Profile{
		Family: "TestFam", Class: ClassA, Traversal: TraverseShuffled,
		Cipher: CipherAES, ChunkKB: 16,
	}}
	calls := 0
	res, err := s.Run(fs, 100, m.Root, func() bool {
		calls++
		return calls > 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Suspended || res.Completed {
		t.Fatalf("result = %+v, want suspended", res)
	}
	if res.FilesAttacked > 12 {
		t.Fatalf("attacked %d files after stop", res.FilesAttacked)
	}
}

func TestCTBLockerOrdering(t *testing.T) {
	fs, m := buildVictim(t)
	s := Sample{ID: "ctb", Seed: 14, Profile: Profile{
		Family: "CTB-Locker", Class: ClassA, Traversal: TraverseSizeAscending,
		Extensions: []string{"txt", "md"}, Cipher: CipherAES, ChunkKB: 16,
	}}
	rngTargets, err := s.collectTargets(fs, m.Root, newTestRand(14))
	if err != nil {
		t.Fatal(err)
	}
	if len(rngTargets) == 0 {
		t.Fatal("no txt/md targets found")
	}
	for i := 1; i < len(rngTargets); i++ {
		if rngTargets[i].size < rngTargets[i-1].size {
			t.Fatalf("targets not size-ascending at %d", i)
		}
	}
	for _, tgt := range rngTargets {
		if !strings.HasSuffix(tgt.path, ".txt") && !strings.HasSuffix(tgt.path, ".md") {
			t.Fatalf("non-txt/md target %s", tgt.path)
		}
	}
}

func TestTeslaCryptSkipsFirstDirectory(t *testing.T) {
	fs, m := buildVictim(t)
	s := Sample{ID: "tesla", Seed: 15, Profile: Profile{
		Family: "TeslaCrypt", Class: ClassA, Traversal: TraverseDFS,
		Cipher: CipherAES, RenameExt: ".ecc", DropNote: true,
		SkipFirstDirectory: true, ChunkKB: 16,
	}}
	res, err := s.Run(fs, 100, m.Root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NotesDropped == 0 {
		t.Fatal("no notes dropped")
	}
	if res.FilesAttacked == 0 {
		t.Fatal("no files attacked")
	}
}

func TestVirlockPrependsStub(t *testing.T) {
	fs, m := buildVictim(t)
	s := Sample{ID: "virlock", Seed: 16, Profile: Profile{
		Family: "Virlock", Class: ClassC, Traversal: TraverseShuffled,
		Cipher: CipherXOR, RenameExt: ".exe", MoveOverOriginal: true,
		PrependStub: true, ChunkKB: 16,
	}}
	if _, err := s.Run(fs, 100, m.Root, nil); err != nil {
		t.Fatal(err)
	}
	found := false
	err := fs.Walk(m.Root, func(info vfs.FileInfo) error {
		if info.IsDir || found {
			return nil
		}
		content, err := fs.ReadFileRaw(info.Path)
		if err != nil || len(content) < 2 {
			return nil
		}
		if content[0] == 'M' && content[1] == 'Z' {
			found = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no MZ-stubbed file found after Virlock run")
	}
}

func TestCipherKinds(t *testing.T) {
	plain := []byte(strings.Repeat("the secret business plan ", 200))
	for _, kind := range []CipherKind{CipherAES, CipherRC4, CipherXOR} {
		enc := newEncryptor(kind, 42).encrypt(plain, 7)
		if len(enc) != len(plain) {
			t.Fatalf("%v: length changed", kind)
		}
		if ent := entropy.Shannon(enc); ent < 7.0 {
			t.Fatalf("%v ciphertext entropy %.2f, want ≥ 7.0", kind, ent)
		}
		// Deterministic for the same seed and nonce.
		enc2 := newEncryptor(kind, 42).encrypt(plain, 7)
		if string(enc) != string(enc2) {
			t.Fatalf("%v not deterministic", kind)
		}
		// Different nonce → different ciphertext.
		enc3 := newEncryptor(kind, 42).encrypt(plain, 8)
		if string(enc) == string(enc3) {
			t.Fatalf("%v ignores the file nonce", kind)
		}
	}
}

func TestNoteIsLowEntropy(t *testing.T) {
	s := Sample{ID: "n", Seed: 17, Profile: Profile{Family: "TeslaCrypt"}}
	note := s.noteText(newTestRand(17))
	if ent := entropy.Shannon(note); ent > 5.5 {
		t.Fatalf("ransom note entropy %.2f, want low", ent)
	}
	if !strings.Contains(string(note), "BTC") {
		t.Fatal("note does not demand payment")
	}
}

func TestShadowCopyWipe(t *testing.T) {
	fs, m := buildVictim(t)
	fs.CreateShadowCopy("backup-1")
	fs.CreateShadowCopy("backup-2")
	s := Sample{ID: "tesla-vss", Seed: 21, Profile: Profile{
		Family: "TeslaCrypt", Class: ClassA, Traversal: TraverseDFS,
		Cipher: CipherAES, DeleteShadowCopies: true, ChunkKB: 16,
	}}
	if _, err := s.Run(fs, 100, m.Root, nil); err != nil {
		t.Fatal(err)
	}
	if got := fs.ShadowCopies(); len(got) != 0 {
		t.Fatalf("shadow copies survive: %v", got)
	}
}
