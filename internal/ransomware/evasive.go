package ransomware

import (
	"math/rand"
)

// EvasionKind identifies an indicator-evasion strategy from §III-F of the
// paper. "Malware detection is an arms race": each strategy defeats one
// indicator, but — as the paper argues and the evasion experiment verifies —
// doing so skews the remaining indicators, because the three primaries cover
// complementary aspects of a file transformation.
type EvasionKind int

// Evasion strategies.
const (
	// EvadeNone is the unmodified behaviour.
	EvadeNone EvasionKind = iota
	// EvadeEntropy pads ciphertext with low-entropy filler so the output
	// entropy matches the input — defeating the entropy delta, but making
	// the output even less similar to the original and still changing its
	// type.
	EvadeEntropy
	// EvadeTypeChange preserves the original magic bytes at the start of
	// the encrypted file so the type is unchanged — but the body is still
	// dissimilar ciphertext with a high entropy delta.
	EvadeTypeChange
	// EvadeSimilarity keeps a large plaintext prefix of the original file
	// intact (encrypting only the tail) so similarity digests still
	// match — but then most of each file survives, which is visible in
	// the other indicators only weakly AND leaves the data recoverable,
	// defeating the ransom scheme itself.
	EvadeSimilarity
	// EvadeAll attempts all three at once: magic preserved, plaintext
	// prefix kept, low-entropy padding appended. The result barely
	// damages the data — the paper's "very difficult engineering
	// trade-offs".
	EvadeAll
)

// String returns the strategy name.
func (k EvasionKind) String() string {
	switch k {
	case EvadeNone:
		return "none"
	case EvadeEntropy:
		return "pad-low-entropy"
	case EvadeTypeChange:
		return "preserve-magic"
	case EvadeSimilarity:
		return "keep-plaintext-prefix"
	case EvadeAll:
		return "all-three"
	default:
		return "unknown"
	}
}

// EvasionKinds lists every strategy including the baseline.
func EvasionKinds() []EvasionKind {
	return []EvasionKind{EvadeNone, EvadeEntropy, EvadeTypeChange, EvadeSimilarity, EvadeAll}
}

// EvasiveSample wraps a base sample with an evasion strategy applied to its
// output transformation.
func EvasiveSample(base Sample, kind EvasionKind) Sample {
	s := base
	s.ID = base.ID + "+" + kind.String()
	s.Profile.Evasion = kind
	return s
}

// applyEvasion post-processes ciphertext according to the strategy. plain is
// the original content (needed for magic/prefix preservation).
func applyEvasion(kind EvasionKind, plain, cipher []byte, rng *rand.Rand) []byte {
	switch kind {
	case EvadeEntropy:
		return padLowEntropy(cipher, rng)
	case EvadeTypeChange:
		return preserveMagic(plain, cipher)
	case EvadeSimilarity:
		return keepPrefix(plain, cipher)
	case EvadeAll:
		out := keepPrefix(plain, cipher)
		out = preserveMagic(plain, out)
		return padLowEntropy(out, rng)
	default:
		return cipher
	}
}

// padLowEntropy interleaves ciphertext with enough constant filler to pull
// the byte entropy down toward plaintext levels (≈ 4.3 bits/byte needs
// roughly equal parts filler).
func padLowEntropy(cipher []byte, rng *rand.Rand) []byte {
	out := make([]byte, 0, len(cipher)*2)
	filler := []byte("AAAAAAAAAAAAAAAA")
	for off := 0; off < len(cipher); off += 16 {
		end := off + 16
		if end > len(cipher) {
			end = len(cipher)
		}
		out = append(out, cipher[off:end]...)
		out = append(out, filler[:end-off]...)
	}
	return out
}

// preserveMagic copies the first 512 bytes of the original over the
// ciphertext so magic-number identification still sees the original type.
func preserveMagic(plain, cipher []byte) []byte {
	out := make([]byte, len(cipher))
	copy(out, cipher)
	n := 512
	if n > len(plain) {
		n = len(plain)
	}
	if n > len(out) {
		n = len(out)
	}
	copy(out, plain[:n])
	return out
}

// keepPrefix leaves the first 70% of the original file as plaintext and
// encrypts only the tail — enough shared content for similarity digests to
// match, and enough surviving plaintext that the "attack" is mostly
// harmless.
func keepPrefix(plain, cipher []byte) []byte {
	out := make([]byte, len(plain))
	copy(out, plain)
	cut := len(plain) * 7 / 10
	for i := cut; i < len(plain) && i-cut < len(cipher); i++ {
		out[i] = cipher[i-cut]
	}
	return out
}
