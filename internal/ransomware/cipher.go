package ransomware

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rc4"
	"math/rand"
)

// CipherKind selects the encryption algorithm a family uses. The paper
// notes many families implement their own algorithms, which is why
// CryptoDrop never inspects crypto API calls — only the data. All kinds
// here produce ciphertext indistinguishable from random data, as strong
// (or keystream) encryption does.
type CipherKind int

// Supported cipher kinds.
const (
	// CipherAES is AES-128 in CTR mode.
	CipherAES CipherKind = iota + 1
	// CipherRC4 is the RC4 stream cipher (used by several older
	// families).
	CipherRC4
	// CipherXOR is a long-keystream XOR, the Xorist approach.
	CipherXOR
)

// String returns the cipher name.
func (c CipherKind) String() string {
	switch c {
	case CipherAES:
		return "aes-ctr"
	case CipherRC4:
		return "rc4"
	case CipherXOR:
		return "xor-keystream"
	default:
		return "unknown"
	}
}

// encryptor encrypts byte slices with a per-sample key.
type encryptor struct {
	kind CipherKind
	key  []byte
	iv   []byte
}

// newEncryptor derives a deterministic per-sample key from seed.
func newEncryptor(kind CipherKind, seed int64) *encryptor {
	rng := rand.New(rand.NewSource(seed))
	key := make([]byte, 16)
	iv := make([]byte, 16)
	rng.Read(key)
	rng.Read(iv)
	return &encryptor{kind: kind, key: key, iv: iv}
}

// encrypt returns the ciphertext of data. A fresh stream is keyed per file
// so identical plaintexts in different files do not produce identical
// ciphertexts.
func (e *encryptor) encrypt(data []byte, fileNonce uint64) []byte {
	out := make([]byte, len(data))
	switch e.kind {
	case CipherAES:
		block, err := aes.NewCipher(e.key)
		if err != nil {
			// Key length is fixed at 16; this cannot happen.
			copy(out, data)
			return out
		}
		iv := make([]byte, aes.BlockSize)
		copy(iv, e.iv)
		for i := 0; i < 8; i++ {
			iv[i] ^= byte(fileNonce >> (8 * i))
		}
		cipher.NewCTR(block, iv).XORKeyStream(out, data)
	case CipherRC4:
		key := make([]byte, len(e.key))
		copy(key, e.key)
		for i := 0; i < 8; i++ {
			key[i] ^= byte(fileNonce >> (8 * i))
		}
		c, err := rc4.NewCipher(key)
		if err != nil {
			copy(out, data)
			return out
		}
		c.XORKeyStream(out, data)
	case CipherXOR:
		// Long keystream XOR seeded per file: output is keystream-random.
		rng := rand.New(rand.NewSource(int64(fileNonce) ^ int64(e.key[0])<<32 ^ int64(e.key[8])<<40))
		ks := make([]byte, len(data))
		rng.Read(ks)
		for i := range data {
			out[i] = data[i] ^ ks[i]
		}
	default:
		copy(out, data)
	}
	return out
}
