package ransomware

import (
	"fmt"
	"math/rand"
	"path"
	"sort"
	"strings"

	"cryptodrop/internal/vfs"
)

// RunResult summarises one sample execution.
type RunResult struct {
	// FilesAttacked counts files on which the sample completed its
	// transformation before stopping.
	FilesAttacked int
	// NotesDropped counts ransom notes written.
	NotesDropped int
	// OpErrors counts filesystem operations that failed (vetoes,
	// read-only files).
	OpErrors int
	// Suspended reports the sample was stopped by the monitor.
	Suspended bool
	// Completed reports the sample ran out of targets.
	Completed bool
}

// target is one file the sample plans to attack.
type target struct {
	path  string
	size  int64
	depth int
}

// Run executes the sample as process pid against the documents tree rooted
// at root. stop, if non-nil, is polled between operations; when it returns
// true (the monitor suspended the process) the run ends with
// Suspended=true. Run only returns an error for harness-level failures —
// in-attack op failures are counted, as real malware shrugs them off.
func (s *Sample) Run(fsys *vfs.FS, pid int, root string, stop func() bool) (RunResult, error) {
	return s.run(fsys, func(int) int { return pid }, root, stop)
}

// RunAsFamily executes the sample's attack spread across a family of worker
// processes, rotating per file — the score-dilution evasion a per-process
// scoreboard is vulnerable to and family scoring defeats. stop is polled
// with each worker's PID in turn.
func (s *Sample) RunAsFamily(fsys *vfs.FS, pids []int, root string, stop func(pid int) bool) (RunResult, error) {
	if len(pids) == 0 {
		return RunResult{}, fmt.Errorf("sample %s: no worker pids", s.ID)
	}
	var wrapped func() bool
	if stop != nil {
		wrapped = func() bool {
			for _, pid := range pids {
				if stop(pid) {
					return true
				}
			}
			return false
		}
	}
	return s.run(fsys, func(i int) int { return pids[i%len(pids)] }, root, wrapped)
}

// run is the shared attack loop; pidFor selects the acting process for the
// i-th file.
func (s *Sample) run(fsys *vfs.FS, pidFor func(i int) int, root string, stop func() bool) (RunResult, error) {
	var res RunResult
	rng := rand.New(rand.NewSource(s.Seed))
	if stop == nil {
		stop = func() bool { return false }
	}
	if s.Profile.Class == ClassB {
		if err := fsys.MkdirAll(s.Profile.TempDir); err != nil {
			return res, fmt.Errorf("sample %s: temp dir: %w", s.ID, err)
		}
	}
	if s.Profile.DeleteShadowCopies {
		// vssadmin delete shadows /all — frustrate recovery before the
		// attack. These volume-level operations do not touch user data
		// and are invisible to the detector.
		for _, name := range fsys.ShadowCopies() {
			if err := fsys.DeleteShadowCopy(name); err != nil {
				res.OpErrors++
			}
		}
	}
	targets, err := s.collectTargets(fsys, root, rng)
	if err != nil {
		return res, fmt.Errorf("sample %s: enumerate: %w", s.ID, err)
	}
	note := s.noteText(rng)
	notedDirs := make(map[string]bool)
	firstDir := ""
	for i, tgt := range targets {
		pid := pidFor(i)
		if stop() {
			res.Suspended = true
			return res, nil
		}
		dir := path.Dir(tgt.path)
		if s.Profile.DropNote && !notedDirs[dir] {
			notedDirs[dir] = true
			notePath := path.Join(dir, s.noteName())
			if err := fsys.WriteFile(pid, notePath, note); err != nil {
				res.OpErrors++
			} else {
				res.NotesDropped++
			}
			if stop() {
				res.Suspended = true
				return res, nil
			}
		}
		if s.Profile.SkipFirstDirectory {
			if firstDir == "" {
				firstDir = dir
			}
			if dir == firstDir && i < len(targets)-1 {
				continue
			}
		}
		ok := s.attack(fsys, pid, tgt, rng, &res)
		if ok {
			res.FilesAttacked++
		}
		if stop() {
			res.Suspended = true
			return res, nil
		}
	}
	res.Completed = true
	return res, nil
}

// collectTargets enumerates and orders the files the sample will attack.
func (s *Sample) collectTargets(fsys *vfs.FS, root string, rng *rand.Rand) ([]target, error) {
	exts := s.Profile.Extensions
	if len(exts) == 0 {
		exts = productivityExts
	}
	wanted := make(map[string]bool, len(exts))
	for _, e := range exts {
		wanted[e] = true
	}
	var targets []target
	var walk func(dir string, depth int) error
	walk = func(dir string, depth int) error {
		infos, err := fsys.List(dir)
		if err != nil {
			return err
		}
		// Depth-first families descend before touching files.
		if s.Profile.Traversal == TraverseDFS {
			for _, info := range infos {
				if info.IsDir {
					if err := walk(info.Path, depth+1); err != nil {
						return err
					}
				}
			}
		}
		for _, info := range infos {
			if info.IsDir {
				continue
			}
			ext := strings.ToLower(strings.TrimPrefix(path.Ext(info.Path), "."))
			if !wanted[ext] {
				continue
			}
			targets = append(targets, target{path: info.Path, size: info.Size, depth: depth})
		}
		if s.Profile.Traversal != TraverseDFS {
			for _, info := range infos {
				if info.IsDir {
					if err := walk(info.Path, depth+1); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	if err := walk(root, 0); err != nil {
		return nil, err
	}
	switch s.Profile.Traversal {
	case TraverseDFS:
		// Walk order already visits deepest directories first.
	case TraverseSizeAscending:
		sort.Slice(targets, func(i, j int) bool {
			if targets[i].size != targets[j].size {
				return targets[i].size < targets[j].size
			}
			return targets[i].path < targets[j].path
		})
	case TraverseTopDown:
		sort.SliceStable(targets, func(i, j int) bool { return targets[i].depth < targets[j].depth })
	case TraverseShuffled:
		// Shuffle directory visit order but keep files grouped per
		// directory, like malware iterating a shuffled directory list.
		byDir := make(map[string][]target)
		var dirs []string
		for _, t := range targets {
			d := path.Dir(t.path)
			if _, ok := byDir[d]; !ok {
				dirs = append(dirs, d)
			}
			byDir[d] = append(byDir[d], t)
		}
		rng.Shuffle(len(dirs), func(i, j int) { dirs[i], dirs[j] = dirs[j], dirs[i] })
		targets = targets[:0]
		for _, d := range dirs {
			targets = append(targets, byDir[d]...)
		}
	}
	return targets, nil
}

// attack transforms one file per the sample's class. It reports whether the
// transformation completed.
func (s *Sample) attack(fsys *vfs.FS, pid int, tgt target, rng *rand.Rand, res *RunResult) bool {
	switch s.Profile.Class {
	case ClassA:
		return s.attackInPlace(fsys, pid, tgt, rng, res)
	case ClassB:
		return s.attackMoveOut(fsys, pid, tgt, rng, res)
	case ClassC:
		return s.attackNewFile(fsys, pid, tgt, rng, res)
	default:
		return false
	}
}

// chunkSize returns a jittered IO chunk size for this sample.
func (s *Sample) chunkSize(rng *rand.Rand) int {
	kb := s.Profile.ChunkKB
	if kb <= 0 {
		kb = 32
	}
	return (kb/2 + rng.Intn(kb/2+1) + 1) * 1024
}

// readChunks reads the whole file through the handle in chunks, producing
// the multi-operation read stream real malware generates.
func readChunks(h *vfs.Handle, chunk int) ([]byte, error) {
	var content []byte
	buf := make([]byte, chunk)
	for {
		n, err := h.Read(buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return content, nil
		}
		content = append(content, buf[:n]...)
	}
}

// writeChunks writes data through the handle in chunks.
func writeChunks(h *vfs.Handle, data []byte, chunk int) error {
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := h.Write(data[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// attackInPlace is Class A: read, overwrite in place, close, optional
// rename.
func (s *Sample) attackInPlace(fsys *vfs.FS, pid int, tgt target, rng *rand.Rand, res *RunResult) bool {
	h, err := fsys.Open(pid, tgt.path, vfs.ReadWrite)
	if err != nil {
		res.OpErrors++
		return false
	}
	chunk := s.chunkSize(rng)
	content, err := readChunks(h, chunk)
	if err != nil {
		res.OpErrors++
		_ = h.Close()
		return false
	}
	enc := s.encryptorFor().encrypt(content, uint64(tgt.size)^uint64(len(tgt.path))<<17)
	enc = applyEvasion(s.Profile.Evasion, content, enc, rng)
	h.SeekTo(0)
	if err := writeChunks(h, enc, chunk); err != nil {
		res.OpErrors++
		_ = h.Close()
		return false
	}
	if err := h.Close(); err != nil {
		res.OpErrors++
		return false
	}
	if s.Profile.RenameExt != "" {
		if err := fsys.Rename(pid, tgt.path, tgt.path+s.Profile.RenameExt); err != nil {
			res.OpErrors++
		}
	}
	return true
}

// attackMoveOut is Class B: move to the temp directory, rewrite there
// (unmonitored), move back under a new name.
func (s *Sample) attackMoveOut(fsys *vfs.FS, pid int, tgt target, rng *rand.Rand, res *RunResult) bool {
	tmp := path.Join(s.Profile.TempDir, fmt.Sprintf("~wrk%04d.tmp", rng.Intn(10000)))
	if err := fsys.Rename(pid, tgt.path, tmp); err != nil {
		res.OpErrors++
		return false
	}
	h, err := fsys.Open(pid, tmp, vfs.ReadWrite)
	if err != nil {
		// Typically a read-only attribute: clear it and retry, else put
		// the file back where it was.
		res.OpErrors++
		if s.Profile.CannotHandleReadOnly || fsys.SetReadOnly(tmp, false) != nil {
			_ = fsys.Rename(pid, tmp, tgt.path)
			return false
		}
		h, err = fsys.Open(pid, tmp, vfs.ReadWrite)
		if err != nil {
			res.OpErrors++
			_ = fsys.Rename(pid, tmp, tgt.path)
			return false
		}
	}
	chunk := s.chunkSize(rng)
	content, err := readChunks(h, chunk)
	if err != nil {
		res.OpErrors++
		_ = h.Close()
		return false
	}
	enc := s.encryptorFor().encrypt(content, uint64(tgt.size)^uint64(len(tgt.path))<<13)
	enc = applyEvasion(s.Profile.Evasion, content, enc, rng)
	h.SeekTo(0)
	if err := writeChunks(h, enc, chunk); err != nil {
		res.OpErrors++
		_ = h.Close()
		return false
	}
	if err := h.Close(); err != nil {
		res.OpErrors++
		return false
	}
	back := tgt.path + s.Profile.RenameExt
	if s.Profile.RenameExt == "" {
		back = tgt.path + ".locked"
	}
	if err := fsys.Rename(pid, tmp, back); err != nil {
		res.OpErrors++
		return false
	}
	return true
}

// attackNewFile is Class C: read the original, write an independent new
// file, then dispose of the original by overwriting move or delete.
func (s *Sample) attackNewFile(fsys *vfs.FS, pid int, tgt target, rng *rand.Rand, res *RunResult) bool {
	chunk := s.chunkSize(rng)
	h, err := fsys.Open(pid, tgt.path, vfs.ReadOnly)
	if err != nil {
		res.OpErrors++
		return false
	}
	content, err := readChunks(h, chunk)
	if err != nil {
		res.OpErrors++
		_ = h.Close()
		return false
	}
	if err := h.Close(); err != nil {
		res.OpErrors++
	}
	enc := s.encryptorFor().encrypt(content, uint64(tgt.size)^uint64(len(tgt.path))<<11)
	enc = applyEvasion(s.Profile.Evasion, content, enc, rng)
	if s.Profile.PrependStub {
		// Virlock-style infection: the new file is an executable stub
		// carrying the encrypted payload.
		stub := append([]byte("MZ\x90\x00\x03\x00\x00\x00"), []byte("VIRLOCK-STUB")...)
		enc = append(stub, enc...)
	}
	ext := s.Profile.RenameExt
	if ext == "" {
		ext = ".encrypted"
	}
	newPath := tgt.path + ext
	wh, err := fsys.Open(pid, newPath, vfs.WriteOnly|vfs.Create|vfs.Truncate)
	if err != nil {
		res.OpErrors++
		return false
	}
	if err := writeChunks(wh, enc, chunk); err != nil {
		res.OpErrors++
		_ = wh.Close()
		return false
	}
	if err := wh.Close(); err != nil {
		res.OpErrors++
		return false
	}
	if s.Profile.MoveOverOriginal {
		if err := fsys.Rename(pid, newPath, tgt.path); err != nil {
			res.OpErrors++
			return s.disposeStubborn(fsys, pid, tgt.path, res)
		}
		return true
	}
	if s.Profile.BrokenDelete {
		// Defective disposal: the delete targets a mangled path and fails
		// every time; the sample never notices (§V-B footnote).
		if err := fsys.Delete(pid, tgt.path+".$$"); err != nil {
			res.OpErrors++
		}
		return true
	}
	if err := fsys.Delete(pid, tgt.path); err != nil {
		res.OpErrors++
		return s.disposeStubborn(fsys, pid, tgt.path, res)
	}
	return true
}

// disposeStubborn handles a failed disposal (typically a read-only
// original). Samples with the 2008 GPcode quirk give up; everyone else
// clears the attribute and retries, as real malware does.
func (s *Sample) disposeStubborn(fsys *vfs.FS, pid int, p string, res *RunResult) bool {
	if s.Profile.CannotHandleReadOnly {
		return false
	}
	if err := fsys.SetReadOnly(p, false); err != nil {
		return false
	}
	if err := fsys.Delete(pid, p); err != nil {
		res.OpErrors++
		return false
	}
	return true
}

// encryptorFor builds the sample's encryptor.
func (s *Sample) encryptorFor() *encryptor {
	return newEncryptor(s.Profile.Cipher, s.Seed)
}

// noteName is the ransom note file name.
func (s *Sample) noteName() string {
	switch s.Profile.Family {
	case "TeslaCrypt":
		return "HELP_TO_DECRYPT_YOUR_FILES.txt"
	case "CTB-Locker":
		return "Decrypt-All-Files.txt"
	case "CryptoWall":
		return "HELP_DECRYPT.TXT"
	default:
		return "HOW_TO_RECOVER_FILES.txt"
	}
}

// noteText composes the ransom demand: a short, low-entropy text write in
// every directory — the writes whose over-influence the paper's weighted
// entropy mean is designed to resist (§IV-C1).
func (s *Sample) noteText(rng *rand.Rand) []byte {
	amount := 1 + rng.Intn(3)
	return []byte(fmt.Sprintf(
		"!!! YOUR FILES HAVE BEEN ENCRYPTED by %s !!!\n\n"+
			"All of your documents, photos and databases were encrypted with a\n"+
			"strong algorithm. The only way to recover them is to purchase the\n"+
			"private key held by us.\n\n"+
			"Send %d BTC to wallet %016x and contact us via the Tor hidden\n"+
			"service gate%08x.onion with your personal code %08X.\n",
		s.Profile.Family, amount, rng.Uint64(), rng.Uint32(), rng.Uint32()))
}
