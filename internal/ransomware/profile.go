// Package ransomware simulates the 492 encrypting-ransomware samples across
// 14 families that the paper evaluates (§V, Table I). Each family reproduces
// its documented data-centric behaviour — the only thing CryptoDrop can see:
//
//   - its class (§III): A overwrites files in place; B moves files out of
//     the documents tree, encrypts them there, and moves them back; C writes
//     new files and disposes of the originals by delete or rename;
//   - its traversal order (§V-C, Fig. 4): TeslaCrypt walks depth-first,
//     CTB-Locker attacks .txt/.md in ascending size order across the whole
//     tree, GPcode sweeps top-down from the root;
//   - its encryption (real AES-CTR / RC4 / keystream-XOR on the real file
//     bytes), ransom-note drops, extension renames and quirks (the 2008
//     GPcode sample cannot delete read-only files).
//
// Per-sample seeds vary chunk sizes, note text and tie-breaking so all 492
// samples are distinct, the way VirusTotal variants within a family are.
package ransomware

import (
	"fmt"
	"math/rand"
)

// Class is the paper's §III behavioural taxonomy.
type Class int

// Ransomware classes.
const (
	// ClassA overwrites the original file in place.
	ClassA Class = iota + 1
	// ClassB moves the file out of the documents tree, rewrites it there
	// and moves it back (possibly under a new name).
	ClassB
	// ClassC creates a new file with the encrypted content and disposes
	// of the original via delete or overwriting move.
	ClassC
)

// String returns "A", "B" or "C".
func (c Class) String() string {
	switch c {
	case ClassA:
		return "A"
	case ClassB:
		return "B"
	case ClassC:
		return "C"
	default:
		return "?"
	}
}

// Traversal selects the order a sample attacks files in.
type Traversal int

// Traversal orders observed in §V-C.
const (
	// TraverseDFS walks depth-first and attacks the deepest directories
	// first (TeslaCrypt, Fig. 4a).
	TraverseDFS Traversal = iota + 1
	// TraverseSizeAscending attacks files smallest-first across the whole
	// tree (CTB-Locker, Fig. 4b).
	TraverseSizeAscending
	// TraverseTopDown sweeps breadth-first from the root (GPcode,
	// Fig. 4c).
	TraverseTopDown
	// TraverseShuffled visits directories in a pseudo-random order.
	TraverseShuffled
)

// String returns the traversal name.
func (t Traversal) String() string {
	switch t {
	case TraverseDFS:
		return "depth-first"
	case TraverseSizeAscending:
		return "size-ascending"
	case TraverseTopDown:
		return "top-down"
	case TraverseShuffled:
		return "shuffled"
	default:
		return "unknown"
	}
}

// productivityExts are the formats ransomware attacks first (Fig. 5).
var productivityExts = []string{
	"pdf", "odt", "docx", "pptx", "xlsx", "doc", "rtf", "txt", "csv",
	"xml", "html", "md", "json", "log", "jpg", "png", "gif", "zip",
	"mp3", "wav",
}

// Profile is a family's behavioural definition.
type Profile struct {
	// Family is the anti-virus family name (Table I).
	Family string
	// Class is the §III class.
	Class Class
	// Traversal is the attack order.
	Traversal Traversal
	// Extensions restricts the attack to these extensions; nil attacks
	// the full productivity list.
	Extensions []string
	// Cipher selects the encryption algorithm.
	Cipher CipherKind
	// RenameExt, when non-empty, is appended to encrypted file names.
	RenameExt string
	// DropNote writes a ransom note into each directory visited.
	DropNote bool
	// MoveOverOriginal (Class C): dispose of the original by renaming the
	// new file over it, linking old and new content (41 of 63 Class C
	// samples); otherwise the original is deleted.
	MoveOverOriginal bool
	// CannotHandleReadOnly (the 2008 GPcode quirk): the sample does not
	// work around failures on read-only files.
	CannotHandleReadOnly bool
	// BrokenDelete (Class C): the sample's disposal logic is defective —
	// it attempts deletion against the wrong path and never removes an
	// original. The paper observed two such samples, detected with zero
	// files lost (§V-B footnote, §V-C).
	BrokenDelete bool
	// PrependStub (Virlock): the new file is an executable stub carrying
	// the encrypted payload.
	PrependStub bool
	// DeleteShadowCopies makes the sample wipe all volume shadow copies
	// before attacking (TeslaCrypt disables and removes them, §III). The
	// engine deliberately ignores these operations: they do not directly
	// alter user data.
	DeleteShadowCopies bool
	// Evasion applies an §III-F indicator-evasion strategy to the
	// sample's output (see EvasiveSample).
	Evasion EvasionKind
	// SkipFirstDirectory delays encryption until the second directory
	// visited, writing only the ransom note in the first (TeslaCrypt,
	// §V-C).
	SkipFirstDirectory bool
	// TempDir is where Class B samples park files (outside the protected
	// tree).
	TempDir string
	// ChunkKB bounds the read/write chunk size in KiB; the per-sample rng
	// jitters within it.
	ChunkKB int
}

// familySpec maps Table I rows onto behaviour profiles and sample counts.
type familySpec struct {
	profile Profile
	countA  int
	countB  int
	countC  int
}

// tableI reproduces the family/class breakdown of Table I exactly:
// 282 Class A, 147 Class B and 63 Class C samples — 492 in total.
func tableI() []familySpec {
	return []familySpec{
		{
			profile: Profile{Family: "CryptoDefense", Traversal: TraverseShuffled, Cipher: CipherAES,
				RenameExt: "", DropNote: true, MoveOverOriginal: true},
			countC: 18,
		},
		{
			profile: Profile{Family: "CryptoFortress", Traversal: TraverseShuffled, Cipher: CipherAES,
				RenameExt: ".frtrss", DropNote: true},
			countA: 2,
		},
		{
			profile: Profile{Family: "CryptoLocker", Traversal: TraverseShuffled, Cipher: CipherAES,
				RenameExt: ".encrypted", DropNote: true, MoveOverOriginal: true},
			countA: 13, countB: 16, countC: 2,
		},
		{
			profile: Profile{Family: "CryptoLocker (copycat)", Traversal: TraverseShuffled, Cipher: CipherRC4,
				RenameExt: ".clf", DropNote: true},
			countB: 1, countC: 1,
		},
		{
			profile: Profile{Family: "CryptoTorLocker2015", Traversal: TraverseShuffled, Cipher: CipherAES,
				RenameExt: ".CryptoTorLocker2015!", DropNote: true},
			countA: 1,
		},
		{
			profile: Profile{Family: "CryptoWall", Traversal: TraverseTopDown, Cipher: CipherAES,
				DropNote: true, MoveOverOriginal: true, DeleteShadowCopies: true},
			countA: 2, countC: 6,
		},
		{
			profile: Profile{Family: "CTB-Locker", Traversal: TraverseSizeAscending, Cipher: CipherAES,
				Extensions: []string{"txt", "md"}, RenameExt: ".ctbl", DropNote: true},
			countA: 1, countB: 120, countC: 1,
		},
		{
			profile: Profile{Family: "Filecoder", Traversal: TraverseShuffled, Cipher: CipherAES,
				RenameExt: ".crypted", DropNote: true, MoveOverOriginal: true},
			countA: 51, countB: 9, countC: 12,
		},
		{
			profile: Profile{Family: "GPcode", Traversal: TraverseTopDown, Cipher: CipherRC4,
				RenameExt: ".PWNED", DropNote: true, CannotHandleReadOnly: true},
			countA: 12, countC: 1,
		},
		{
			profile: Profile{Family: "MBL Advisory", Traversal: TraverseShuffled, Cipher: CipherRC4,
				DropNote: true, MoveOverOriginal: true},
			countC: 1,
		},
		{
			profile: Profile{Family: "PoshCoder", Traversal: TraverseShuffled, Cipher: CipherAES,
				RenameExt: ".poshcoder", DropNote: true},
			countA: 1,
		},
		{
			profile: Profile{Family: "Ransom-FUE", Traversal: TraverseShuffled, Cipher: CipherAES,
				RenameExt: ".fue", DropNote: true},
			countB: 1,
		},
		{
			profile: Profile{Family: "TeslaCrypt", Traversal: TraverseDFS, Cipher: CipherAES,
				RenameExt: ".ecc", DropNote: true, SkipFirstDirectory: true, MoveOverOriginal: true,
				DeleteShadowCopies: true},
			countA: 148, countC: 1,
		},
		{
			profile: Profile{Family: "Virlock", Traversal: TraverseShuffled, Cipher: CipherXOR,
				RenameExt: ".exe", DropNote: false, MoveOverOriginal: true, PrependStub: true},
			countC: 20,
		},
		{
			profile: Profile{Family: "Xorist", Traversal: TraverseShuffled, Cipher: CipherXOR,
				RenameExt: ".EnCiPhErEd", DropNote: true},
			countA: 51,
		},
	}
}

// FamilyNames returns the 14 family names in Table I order ("Ransom-FUE"
// included; the paper excludes it from family counts as generically
// labelled).
func FamilyNames() []string {
	specs := tableI()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.profile.Family
	}
	return names
}

// Sample is one concrete ransomware specimen: a family profile plus a
// per-sample seed that jitters its low-level behaviour.
type Sample struct {
	// ID is a stable specimen identifier, e.g. "TeslaCrypt-A-017".
	ID string
	// Profile is the family behaviour.
	Profile Profile
	// Seed drives the sample's private randomness.
	Seed int64
}

// Roster generates the full 492-sample evaluation set of Table I,
// deterministically from seed.
func Roster(seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []Sample
	for _, spec := range tableI() {
		for _, cc := range []struct {
			class Class
			count int
		}{{ClassA, spec.countA}, {ClassB, spec.countB}, {ClassC, spec.countC}} {
			class, count := cc.class, cc.count
			for i := 0; i < count; i++ {
				p := spec.profile
				p.Class = class
				p.TempDir = "/Windows/Temp"
				p.ChunkKB = 8 + rng.Intn(56)
				if class != ClassC {
					p.MoveOverOriginal = false
				}
				out = append(out, Sample{
					ID:      fmt.Sprintf("%s-%s-%03d", p.Family, class, i),
					Profile: p,
					Seed:    rng.Int63(),
				})
			}
		}
	}
	// Some Class C specimens delete originals instead of moving over them,
	// evading the union linking: the paper observed 41 of 63 Class C
	// samples moving over the original and 22 deleting it. Three profiles
	// are delete-based already; flip 19 more deterministically.
	flipped := 0
	for i := range out {
		if out[i].Profile.Class == ClassC && out[i].Profile.MoveOverOriginal && flipped < 19 &&
			(out[i].Profile.Family == "CryptoDefense" || out[i].Profile.Family == "Virlock") {
			out[i].Profile.MoveOverOriginal = false
			flipped++
		}
	}
	// Two Class C samples have defective disposal logic and never remove
	// an original ("created new files but did not successfully remove the
	// original files", §V-B footnote): the ancient GPcode specimen and one
	// CryptoDefense variant.
	brokenDone := map[string]bool{"GPcode": false, "CryptoDefense": false}
	for i := range out {
		if out[i].Profile.Class != ClassC {
			continue
		}
		if done, tracked := brokenDone[out[i].Profile.Family]; tracked && !done {
			brokenDone[out[i].Profile.Family] = true
			out[i].Profile.BrokenDelete = true
			out[i].Profile.MoveOverOriginal = false
		}
	}
	return out
}
