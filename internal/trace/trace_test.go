package trace

import (
	"bytes"
	"strings"
	"testing"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/vfs"
)

func TestRecorderCapturesStream(t *testing.T) {
	fs := vfs.New()
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	fs.SetInterceptor(interceptOnly{rec})
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(7, "/d/f.txt", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(7, "/d/f.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(7, "/d/f.txt", "/d/g.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(7, "/d/g.txt"); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	records, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(records)) != rec.Records() {
		t.Fatalf("read %d records, recorder says %d", len(records), rec.Records())
	}
	wantOps := []string{"create", "write", "close", "open", "read", "close", "rename", "delete"}
	if len(records) != len(wantOps) {
		t.Fatalf("records = %d, want %d", len(records), len(wantOps))
	}
	for i, rec := range records {
		if rec.Op != wantOps[i] {
			t.Fatalf("record %d op = %s, want %s", i, rec.Op, wantOps[i])
		}
		if rec.Seq != int64(i+1) {
			t.Fatalf("record %d seq = %d", i, rec.Seq)
		}
		if rec.PID != 7 {
			t.Fatalf("record %d pid = %d", i, rec.PID)
		}
	}
	if records[1].DataB64 == "" {
		t.Fatal("write record lost its payload")
	}
}

// interceptOnly adapts a single filter as a vfs.Interceptor.
type interceptOnly struct{ r *Recorder }

func (i interceptOnly) PreOp(op *vfs.Op) error { return i.r.PreOp(op) }
func (i interceptOnly) PostOp(op *vfs.Op)      { i.r.PostOp(op) }

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"op":"explode","seq":1}` + "\n")); err == nil {
		t.Fatal("unknown op accepted")
	}
	records, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(records) != 0 {
		t.Fatalf("blank lines: %v, %d records", err, len(records))
	}
}

func TestReplayReproducesDetection(t *testing.T) {
	// Record a ransomware run on machine A, then replay the trace on a
	// fresh machine B with the same corpus: the engine must reach the
	// same verdict.
	spec := corpus.Spec{Seed: 70, Files: 200, Dirs: 25, SizeScale: 0.25}

	// Machine A: corpus + monitor + recorder; run the sample.
	fsA := vfs.New()
	m, err := corpus.Build(fsA, spec)
	if err != nil {
		t.Fatal(err)
	}
	procsA := proc.NewTable()
	monA, err := cryptodrop.NewMonitor(fsA, procsA, cryptodrop.WithRoot(m.Root))
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf bytes.Buffer
	rec := NewRecorder(&traceBuf)
	if err := monA.Chain().Attach(500000, rec); err != nil {
		t.Fatal(err)
	}
	sample := ransomware.Sample{ID: "traced", Seed: 71, Profile: ransomware.Profile{
		Family: "TestFam", Class: ransomware.ClassA, Traversal: ransomware.TraverseShuffled,
		Cipher: ransomware.CipherAES, RenameExt: ".enc", ChunkKB: 16,
	}}
	pidA := procsA.Spawn(sample.ID)
	res, err := sample.Run(fsA, pidA, m.Root, func() bool { return procsA.Suspended(pidA) })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Suspended {
		t.Fatal("sample not suspended on machine A")
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	// Machine B: identical corpus, fresh monitor; replay the trace.
	records, err := Read(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("empty trace")
	}
	fsB := vfs.New()
	if _, err := corpus.Build(fsB, spec); err != nil {
		t.Fatal(err)
	}
	procsB := proc.NewTable()
	monB, err := cryptodrop.NewMonitor(fsB, procsB, cryptodrop.WithoutEnforcement(), cryptodrop.WithRoot(m.Root))
	if err != nil {
		t.Fatal(err)
	}
	// Register the traced PID so reports resolve.
	for procsB.Spawn("replayed") < pidA {
	}
	rr, err := Replay(fsB, records)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Applied == 0 {
		t.Fatalf("nothing applied: %+v", rr)
	}
	if len(monB.Detections()) != 1 {
		t.Fatalf("replay produced %d detections, want 1 (applied %d, skipped %d)",
			len(monB.Detections()), rr.Applied, rr.Skipped)
	}
	repA, _ := monA.Report(pidA)
	repB, _ := monB.Report(pidA)
	if !repB.Detected {
		t.Fatal("replayed process not detected")
	}
	// Scores track closely (replay flattens handle modes slightly).
	if diff := repA.Score - repB.Score; diff > 25 || diff < -25 {
		t.Fatalf("scores diverge: A=%.1f B=%.1f", repA.Score, repB.Score)
	}
}

func TestReplaySkipsForeignFiles(t *testing.T) {
	records := []Record{
		{Seq: 1, Op: "delete", PID: 1, Path: "/never/existed"},
		{Seq: 2, Op: "rename", PID: 1, Path: "/also/missing", NewPath: "/x"},
	}
	fs := vfs.New()
	rr, err := Replay(fs, records)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Skipped != 2 || rr.Applied != 0 {
		t.Fatalf("result = %+v", rr)
	}
}
