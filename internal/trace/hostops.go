package trace

import (
	"encoding/base64"

	"cryptodrop/internal/core"
	"cryptodrop/internal/host"
)

// BuildHostOps translates a recorded operation stream into host ingest ops,
// carrying every byte the engine will need inside the ops themselves: the
// producer-side store advances exactly as EventReplayer.Replay's does, but
// instead of driving an engine it stages pre-state content in Op.Pre,
// post-state content in Op.Post, and evicts staged IDs once the op is
// scored. A host session applying the returned ops (in order, with no
// fallback ContentSource) produces a scoreboard, detection list and flight
// trace bit-identical to EventReplayer.Replay over the same records — the
// conformance suite pins this.
//
// The receiver must be seeded exactly as for Replay; building consumes the
// store (it mutates as records go by), so use a fresh replayer per build.
// Skip rules match Replay: undecodable payloads and opens of files outside
// the seeded corpus are dropped.
func (r *EventReplayer) BuildHostOps(records []Record) ([]host.Op, ReplayResult) {
	var res ReplayResult
	ops := make([]host.Op, 0, len(records))
	for i := range records {
		op, ok := r.buildOp(&records[i])
		if !ok {
			res.Skipped++
			continue
		}
		res.Applied++
		ops = append(ops, op)
	}
	return ops, res
}

// copyBytes snapshots store data for staging: the store mutates after the
// op is built, the staged slice must not.
func copyBytes(b []byte) []byte { return append([]byte(nil), b...) }

// stage adds id→content to the map, allocating it on first use.
func stage(m map[uint64][]byte, id uint64, content []byte) map[uint64][]byte {
	if m == nil {
		m = make(map[uint64][]byte, 1)
	}
	m[id] = content
	return m
}

// buildOp translates one record, advancing the store exactly as
// EventReplayer.apply does; it reports whether the record translates (false
// mirrors apply's skip rules).
func (r *EventReplayer) buildOp(rec *Record) (host.Op, bool) {
	ev := rec.event()
	op := host.Op{Event: ev}
	switch ev.Kind {
	case core.EvCreate:
		// A newly created (empty) file: register it so later writes land.
		r.Seed(rec.Path, rec.FileID, nil)

	case core.EvOpen:
		f := r.byPath[rec.Path]
		if f == nil {
			if ev.Flags&core.EvCreateIntent == 0 {
				return host.Op{}, false // pre-state unknown
			}
			r.Seed(rec.Path, rec.FileID, nil)
			f = r.byPath[rec.Path]
		}
		// The live PreOp saw the size before any truncation; the record
		// carries the post-truncation size. Reconstruct the pre-size (and
		// stage the pre-truncation content) from the store. Staging reads
		// the ID-keyed side exactly as the replayer's Content does.
		pre := ev
		pre.Size = int64(len(f.data))
		op.PreEvent = &pre
		if g := r.byID[ev.FileID]; g != nil {
			op.Pre = stage(op.Pre, ev.FileID, copyBytes(g.data))
			op.Evict = append(op.Evict, ev.FileID)
		}
		if ev.Flags&core.EvTruncate != 0 && ev.Flags&core.EvWriteIntent != 0 {
			f.data = nil
		}

	case core.EvRead:
		data, err := base64.StdEncoding.DecodeString(rec.DataB64)
		if err != nil {
			return host.Op{}, false
		}
		op.Event.Data = data

	case core.EvWrite:
		data, err := base64.StdEncoding.DecodeString(rec.DataB64)
		if err != nil {
			return host.Op{}, false
		}
		op.Event.Data = data
		// PreEvent may snapshot the pre-write content (the fallback for
		// handles opened before the engine attached).
		if g := r.byID[ev.FileID]; g != nil {
			op.Pre = stage(op.Pre, ev.FileID, copyBytes(g.data))
			op.Evict = append(op.Evict, ev.FileID)
		}
		if f := r.byPath[rec.Path]; f != nil {
			f.write(rec.Offset, data)
		}

	case core.EvClose:
		// Handle measures the completed rewrite; a file missing from the
		// store stays missing from the overlay, so the content read fails
		// and the evaluation no-ops exactly as in a live run.
		if g := r.byID[ev.FileID]; g != nil {
			op.Post = stage(op.Post, ev.FileID, copyBytes(g.data))
			op.Evict = append(op.Evict, ev.FileID)
		}

	case core.EvDelete:
		if f := r.byPath[rec.Path]; f != nil {
			delete(r.byPath, rec.Path)
			delete(r.byID, f.id)
		}

	case core.EvRename:
		// PreEvent snapshots the replaced file and/or the moving file;
		// Handle measures the moving file at its destination. The bytes do
		// not change across a rename, so staging the pre-state covers both
		// sides of the pair.
		if rec.ReplacedID != 0 {
			if g := r.byID[rec.ReplacedID]; g != nil {
				op.Pre = stage(op.Pre, rec.ReplacedID, copyBytes(g.data))
				op.Evict = append(op.Evict, rec.ReplacedID)
			}
		}
		if g := r.byID[ev.FileID]; g != nil {
			op.Pre = stage(op.Pre, ev.FileID, copyBytes(g.data))
			op.Evict = append(op.Evict, ev.FileID)
		}
		if old := r.byPath[rec.NewPath]; old != nil && rec.ReplacedID != 0 {
			delete(r.byID, old.id)
		}
		if f := r.byPath[rec.Path]; f != nil {
			delete(r.byPath, rec.Path)
			r.byPath[rec.NewPath] = f
		}

	default:
		return host.Op{}, false
	}
	return op, true
}
