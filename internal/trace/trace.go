// Package trace records and replays filesystem operation streams. A
// Recorder sits in the filter chain and serialises every operation —
// including payload bytes — to a JSON-lines stream; a Replayer re-executes
// a recorded stream against a fresh filesystem, optionally under a fresh
// CryptoDrop engine.
//
// This supports the forensic workflow behind the paper's evaluation
// (§IV-C: the research prototype logs measurements for later inspection)
// and makes detections reproducible offline: capture a suspicious process's
// trace once, then re-score it under different engine configurations
// without re-running the malware.
package trace

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"cryptodrop/internal/vfs"
)

// Record is the serialised form of one filesystem operation.
type Record struct {
	// Seq is the 1-based sequence number within the trace.
	Seq int64 `json:"seq"`
	// Op is the operation kind name ("create", "read", ...).
	Op string `json:"op"`
	// PID is the acting process.
	PID int `json:"pid"`
	// Path is the primary path.
	Path string `json:"path"`
	// NewPath is the rename destination, when applicable.
	NewPath string `json:"newPath,omitempty"`
	// FileID is the stable file identity at record time.
	FileID uint64 `json:"fileId"`
	// ReplacedID is the replaced file's identity for renames, when set.
	ReplacedID uint64 `json:"replacedId,omitempty"`
	// Offset is the IO offset for reads and writes.
	Offset int64 `json:"offset,omitempty"`
	// Size is the file size after the operation.
	Size int64 `json:"size,omitempty"`
	// Flags are the open flags for open/create records.
	Flags int `json:"flags,omitempty"`
	// Wrote marks close records of handles that wrote.
	Wrote bool `json:"wrote,omitempty"`
	// DataB64 is the base64 payload of reads and writes.
	DataB64 string `json:"data,omitempty"`
}

// opName maps vfs op kinds to stable record names.
var opNames = map[vfs.OpKind]string{
	vfs.OpCreate: "create",
	vfs.OpOpen:   "open",
	vfs.OpRead:   "read",
	vfs.OpWrite:  "write",
	vfs.OpClose:  "close",
	vfs.OpDelete: "delete",
	vfs.OpRename: "rename",
}

// kindByName is the inverse of opNames.
var kindByName = func() map[string]vfs.OpKind {
	m := make(map[string]vfs.OpKind, len(opNames))
	for k, v := range opNames {
		m[v] = k
	}
	return m
}()

// Recorder is a minifilter that serialises completed operations. Attach it
// to a filter.Chain at any altitude.
type Recorder struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	seq int64
	err error
}

// NewRecorder writes JSON-lines records to w. Call Flush when done.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{w: bw, enc: json.NewEncoder(bw)}
}

// Name identifies the filter.
func (r *Recorder) Name() string { return "trace-recorder" }

// PreOp never vetoes.
func (r *Recorder) PreOp(op *vfs.Op) error { return nil }

// PostOp serialises the completed operation.
func (r *Recorder) PostOp(op *vfs.Op) {
	rec := Record{
		Op:         opNames[op.Kind],
		PID:        op.PID,
		Path:       op.Path,
		NewPath:    op.NewPath,
		FileID:     op.FileID,
		ReplacedID: op.ReplacedID,
		Offset:     op.Offset,
		Size:       op.Size,
		Flags:      int(op.Flags),
		Wrote:      op.Wrote,
	}
	if len(op.Data) > 0 {
		rec.DataB64 = base64.StdEncoding.EncodeToString(op.Data)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.seq++
	rec.Seq = r.seq
	if err := r.enc.Encode(&rec); err != nil {
		r.err = err
	}
}

// Flush drains buffered records and returns the first write error, if any.
func (r *Recorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Records returns how many operations were recorded.
func (r *Recorder) Records() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Read parses a JSON-lines trace.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if _, ok := kindByName[rec.Op]; !ok {
			return nil, fmt.Errorf("trace: line %d: unknown op %q", line, rec.Op)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return out, nil
}

// ReplayResult summarises a replay.
type ReplayResult struct {
	// Applied counts records re-executed.
	Applied int
	// Skipped counts records that could not be applied (e.g. reads of
	// files the trace never created — content outside the trace).
	Skipped int
}

// Replay re-executes a trace against fsys. Open handles are tracked by
// (PID, path) so chunked read/write/close sequences reconstruct faithfully.
// Records referring to files that do not exist in fsys and were never
// created by the trace are counted as skipped, not fatal: a trace is a
// partial view of a machine.
func Replay(fsys *vfs.FS, records []Record) (ReplayResult, error) {
	var res ReplayResult
	type handleKey struct {
		pid  int
		path string
	}
	handles := make(map[handleKey]*vfs.Handle)
	getHandle := func(pid int, p string, flags vfs.OpenFlag) (*vfs.Handle, error) {
		k := handleKey{pid, p}
		if h, ok := handles[k]; ok {
			return h, nil
		}
		h, err := fsys.Open(pid, p, flags)
		if err != nil {
			return nil, err
		}
		handles[k] = h
		return h, nil
	}
	closeHandle := func(pid int, p string) error {
		k := handleKey{pid, p}
		h, ok := handles[k]
		if !ok {
			return nil
		}
		delete(handles, k)
		return h.Close()
	}
	ensureDir := func(p string) {
		if i := lastSlash(p); i > 0 {
			_ = fsys.MkdirAll(p[:i])
		}
	}
	for _, rec := range records {
		var err error
		switch kindByName[rec.Op] {
		case vfs.OpCreate:
			ensureDir(rec.Path)
			_, err = getHandle(rec.PID, rec.Path, vfs.OpenFlag(rec.Flags))
		case vfs.OpOpen:
			_, err = getHandle(rec.PID, rec.Path, vfs.OpenFlag(rec.Flags))
		case vfs.OpRead:
			var h *vfs.Handle
			h, err = getHandle(rec.PID, rec.Path, vfs.ReadOnly)
			if err == nil {
				var payload []byte
				payload, err = base64.StdEncoding.DecodeString(rec.DataB64)
				if err == nil {
					h.SeekTo(rec.Offset)
					buf := make([]byte, len(payload))
					_, err = h.Read(buf)
				}
			}
		case vfs.OpWrite:
			var h *vfs.Handle
			h, err = getHandle(rec.PID, rec.Path, vfs.WriteOnly|vfs.Create)
			if err == nil {
				var payload []byte
				payload, err = base64.StdEncoding.DecodeString(rec.DataB64)
				if err == nil {
					h.SeekTo(rec.Offset)
					_, err = h.Write(payload)
				}
			}
		case vfs.OpClose:
			err = closeHandle(rec.PID, rec.Path)
		case vfs.OpDelete:
			err = fsys.Delete(rec.PID, rec.Path)
		case vfs.OpRename:
			ensureDir(rec.NewPath)
			err = fsys.Rename(rec.PID, rec.Path, rec.NewPath)
		}
		if err != nil {
			res.Skipped++
			continue
		}
		res.Applied++
	}
	// Close any handles the trace left open.
	for _, h := range handles {
		_ = h.Close()
	}
	return res, nil
}

// lastSlash returns the index of the final '/' in p, or -1.
func lastSlash(p string) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return i
		}
	}
	return -1
}
