package trace

import (
	"encoding/base64"
	"fmt"

	"cryptodrop/internal/core"
	"cryptodrop/internal/vfs"
	"cryptodrop/internal/vfsadapter"
)

// EventReplayer feeds a recorded operation stream directly into a
// core.Engine — no filesystem is reconstructed and no handles are opened.
// Where Replay re-executes the trace against a vfs (and so can diverge from
// the live run: repeated opens collapse onto one handle, left-open handles
// get synthesised closes), the event replayer emits exactly one
// PreEvent/Handle pair per record, in record order, which is precisely the
// stream the live engine consumed. On a complete trace over a known corpus
// it reproduces the live scoreboard, detections and flight-recorder trace
// bit for bit (pinned by the cross-backend conformance suite).
//
// The replayer maintains its own content store, seeded from the corpus the
// trace was captured over, and mutates it as write/rename/delete records go
// by; it serves the engine's ContentSource lookups from that store. Records
// whose pre-state is unknown (opens of files outside the seeded corpus) are
// skipped, mirroring how a trace is a partial view of a machine.
type EventReplayer struct {
	byPath map[string]*replayFile
	byID   map[uint64]*replayFile
}

type replayFile struct {
	id   uint64
	data []byte
}

// NewEventReplayer returns a replayer with an empty content store.
func NewEventReplayer() *EventReplayer {
	return &EventReplayer{
		byPath: make(map[string]*replayFile),
		byID:   make(map[uint64]*replayFile),
	}
}

// Seed installs a file's pre-trace content under its stable ID and path.
func (r *EventReplayer) Seed(path string, id uint64, content []byte) {
	f := &replayFile{id: id, data: append([]byte(nil), content...)}
	r.byPath[path] = f
	r.byID[id] = f
}

// SeedFromFS seeds the store from every file in fsys — typically a corpus
// rebuilt from the same deterministic spec the trace was captured over, so
// file IDs line up with the recorded ones.
func (r *EventReplayer) SeedFromFS(fsys *vfs.FS) error {
	err := fsys.Walk("/", func(info vfs.FileInfo) error {
		if info.IsDir {
			return nil
		}
		content, err := fsys.ReadFileRaw(info.Path)
		if err != nil {
			return fmt.Errorf("%s: %w", info.Path, err)
		}
		r.Seed(info.Path, info.FileID, content)
		return nil
	})
	if err != nil {
		return fmt.Errorf("trace: seed: %w", err)
	}
	return nil
}

// Content implements core.ContentSource over the replayer's store. The
// returned slice is a copy: the store mutates as the replay advances.
func (r *EventReplayer) Content(id uint64) ([]byte, error) {
	f, ok := r.byID[id]
	if !ok {
		return nil, fmt.Errorf("trace: no content for file id %d", id)
	}
	return append([]byte(nil), f.data...), nil
}

// event converts a record to the engine's event model, reusing the one
// vfs→Event mapping so a replayed record and a live operation translate
// identically.
func (rec *Record) event() core.Event {
	op := vfs.Op{
		Kind:       kindByName[rec.Op],
		PID:        rec.PID,
		Path:       rec.Path,
		NewPath:    rec.NewPath,
		FileID:     rec.FileID,
		ReplacedID: rec.ReplacedID,
		Offset:     rec.Offset,
		Size:       rec.Size,
		Flags:      vfs.OpenFlag(rec.Flags),
		Wrote:      rec.Wrote,
	}
	return vfsadapter.EventFromOp(&op)
}

// Replay emits the records into eng in order. The engine must have been
// constructed with this replayer as its ContentSource. Undecodable payloads
// and records whose pre-state is missing from the store are skipped.
func (r *EventReplayer) Replay(eng *core.Engine, records []Record) (ReplayResult, error) {
	var res ReplayResult
	for i := range records {
		rec := &records[i]
		if r.apply(eng, rec) {
			res.Applied++
		} else {
			res.Skipped++
		}
	}
	eng.Flush()
	return res, nil
}

// Advance fast-forwards the content store through records without emitting
// anything: every store mutation (writes, truncating opens, deletes, renames)
// happens exactly as in Replay, but no engine sees the events. It exists for
// checkpoint resume — an engine restored from a snapshot taken after record N
// needs a ContentSource whose store has also advanced through records [0,N),
// and Advance rebuilds that store state from the same seeded corpus. The
// applied/skipped split matches what Replay would have reported.
func (r *EventReplayer) Advance(records []Record) ReplayResult {
	var res ReplayResult
	for i := range records {
		if r.apply(nil, &records[i]) {
			res.Applied++
		} else {
			res.Skipped++
		}
	}
	return res
}

// apply emits one record; it reports whether the record was applied. A nil
// engine mutates only the content store (the Advance fast-forward path) —
// the applied/skipped decision is identical either way.
func (r *EventReplayer) apply(eng *core.Engine, rec *Record) bool {
	ev := rec.event()
	switch ev.Kind {
	case core.EvCreate:
		// A newly created (empty) file: register it so later writes land.
		r.Seed(rec.Path, rec.FileID, nil)
		if eng != nil {
			eng.PreEvent(ev)
			eng.Handle(ev)
		}

	case core.EvOpen:
		f := r.byPath[rec.Path]
		if f == nil {
			if ev.Flags&core.EvCreateIntent == 0 {
				return false // pre-state unknown: outside the seeded corpus
			}
			r.Seed(rec.Path, rec.FileID, nil)
			f = r.byPath[rec.Path]
		}
		if eng != nil {
			// The live PreOp saw the size before any truncation; the record
			// carries the post-truncation size. Reconstruct the pre-size from
			// the store.
			pre := ev
			pre.Size = int64(len(f.data))
			eng.PreEvent(pre)
		}
		if ev.Flags&core.EvTruncate != 0 && ev.Flags&core.EvWriteIntent != 0 {
			f.data = nil
		}
		if eng != nil {
			eng.Handle(ev)
		}

	case core.EvRead:
		// The payload is authoritative: it is exactly what the live engine
		// saw, whether or not the file is in the store.
		data, err := base64.StdEncoding.DecodeString(rec.DataB64)
		if err != nil {
			return false
		}
		if eng != nil {
			ev.Data = data
			eng.PreEvent(ev)
			eng.Handle(ev)
		}

	case core.EvWrite:
		data, err := base64.StdEncoding.DecodeString(rec.DataB64)
		if err != nil {
			return false
		}
		if eng != nil {
			ev.Data = data
			eng.PreEvent(ev)
		}
		if f := r.byPath[rec.Path]; f != nil {
			f.write(rec.Offset, data)
		}
		if eng != nil {
			eng.Handle(ev)
		}

	case core.EvClose:
		// Emitted even for files missing from the store: the live close of
		// a just-deleted file behaves the same way (its content read fails,
		// so the transformation evaluation is a no-op).
		if eng != nil {
			eng.PreEvent(ev)
			eng.Handle(ev)
		}

	case core.EvDelete:
		if eng != nil {
			eng.PreEvent(ev)
		}
		if f := r.byPath[rec.Path]; f != nil {
			delete(r.byPath, rec.Path)
			delete(r.byID, f.id)
		}
		if eng != nil {
			eng.Handle(ev)
		}

	case core.EvRename:
		if eng != nil {
			eng.PreEvent(ev)
		}
		if old := r.byPath[rec.NewPath]; old != nil && rec.ReplacedID != 0 {
			delete(r.byID, old.id)
		}
		if f := r.byPath[rec.Path]; f != nil {
			delete(r.byPath, rec.Path)
			r.byPath[rec.NewPath] = f
		}
		if eng != nil {
			eng.Handle(ev)
		}

	default:
		return false
	}
	return true
}

// write mirrors the vfs file write: store data at off, growing as needed.
func (f *replayFile) write(off int64, data []byte) {
	need := off + int64(len(data))
	if need > int64(len(f.data)) {
		nd := make([]byte, need)
		copy(nd, f.data)
		f.data = nd
	}
	copy(f.data[off:], data)
}
