package trace

import (
	"strings"
	"testing"
)

func FuzzRead(f *testing.F) {
	f.Add(`{"seq":1,"op":"write","pid":3,"path":"/a","data":"aGk="}`)
	f.Add("{}")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		_, _ = Read(strings.NewReader(line)) // must never panic
	})
}
