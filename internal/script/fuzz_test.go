package script

import "testing"

func FuzzParse(f *testing.F) {
	f.Add(poshCoder)
	f.Add("foreach f\nend")
	f.Add("key k 16\ntargets *")
	f.Add("note a \"b c\"")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src) // must never panic
		if err == nil && prog == nil {
			t.Fatal("nil program without error")
		}
	})
}
