// Package script implements a small interpreted language for expressing
// ransomware-like file transformations, reproducing the §V-E PoshCoder
// analysis: ransomware "does not need to be a compiled binary — it can be
// quickly morphed into an unknown variant and typed or piped directly into
// an interpreter", where signature-based products cannot see it because it
// never exists on disk. CryptoDrop, watching only the data, is indifferent
// to the delivery mechanism: a script variant morphed by any amount of
// comment/whitespace/renaming churn performs the same filesystem operations
// and is detected identically (verified by the package tests).
//
// The language is line-oriented:
//
//	# comments and blank lines are ignored
//	key k 16                 # derive a named encryption key (16 bytes)
//	targets *.docx *.pdf     # glob patterns selecting victim files
//	note HOW_TO.txt "ALL YOUR FILES..."   # ransom note per directory
//	foreach f                # iterate victim files, binding $f
//	  read $f buf            # read file into a named buffer
//	  encrypt buf k          # encrypt buffer with key
//	  write $f buf           # overwrite the file
//	  rename $f $f.locked    # optional rename (suffix appended)
//	end
//	delete $f                # (inside foreach) delete instead of rename
//
// Scripts parse to an AST (Parse) and execute against the virtual
// filesystem (Program.Run), going through the same filter chain as any
// process — so the monitor scores them like any other actor.
package script

import (
	"fmt"
	"strconv"
	"strings"
)

// Stmt is one executable statement.
type Stmt interface{ stmt() }

// KeyStmt derives a named key of the given byte length.
type KeyStmt struct {
	// Name binds the key.
	Name string
	// Bytes is the key length.
	Bytes int
}

// TargetsStmt sets the victim glob patterns.
type TargetsStmt struct {
	// Patterns are file-name globs, e.g. "*.docx".
	Patterns []string
}

// NoteStmt drops a ransom note in every directory visited.
type NoteStmt struct {
	// Name is the note file name.
	Name string
	// Text is the note content.
	Text string
}

// ForeachStmt iterates over the victim files.
type ForeachStmt struct {
	// Var is the loop variable (referenced as $Var).
	Var string
	// Body executes per file.
	Body []Stmt
}

// ReadStmt reads a file into a buffer.
type ReadStmt struct {
	// Path is the file expression (usually the loop variable).
	Path Expr
	// Buf names the destination buffer.
	Buf string
}

// EncryptStmt encrypts a buffer in place with a named key.
type EncryptStmt struct {
	// Buf is the buffer name.
	Buf string
	// Key is the key name.
	Key string
}

// WriteStmt writes a buffer to a file (truncating).
type WriteStmt struct {
	// Path is the destination expression.
	Path Expr
	// Buf is the source buffer name.
	Buf string
}

// RenameStmt renames a file.
type RenameStmt struct {
	// From and To are path expressions.
	From, To Expr
}

// DeleteStmt removes a file.
type DeleteStmt struct {
	// Path is the target expression.
	Path Expr
}

func (KeyStmt) stmt()     {}
func (TargetsStmt) stmt() {}
func (NoteStmt) stmt()    {}
func (ForeachStmt) stmt() {}
func (ReadStmt) stmt()    {}
func (EncryptStmt) stmt() {}
func (WriteStmt) stmt()   {}
func (RenameStmt) stmt()  {}
func (DeleteStmt) stmt()  {}

// Expr is a string-valued expression: a literal with embedded $var
// references; "$f.locked" evaluates to the value of f plus ".locked".
type Expr struct {
	raw string
}

// Eval substitutes variables from env.
func (e Expr) Eval(env map[string]string) string {
	out := e.raw
	// Longest-name-first substitution so $file wins over $f.
	names := make([]string, 0, len(env))
	for name := range env {
		names = append(names, name)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if len(names[j]) > len(names[i]) {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		out = strings.ReplaceAll(out, "$"+name, env[name])
	}
	return out
}

// Program is a parsed script.
type Program struct {
	// Stmts are the top-level statements.
	Stmts []Stmt
}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	// Line is 1-based.
	Line int
	// Msg describes the problem.
	Msg string
}

// Error formats the parse error.
func (e *ParseError) Error() string { return fmt.Sprintf("script: line %d: %s", e.Line, e.Msg) }

// Parse compiles source into a Program.
func Parse(src string) (*Program, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	stmts, err := p.block(false)
	if err != nil {
		return nil, err
	}
	return &Program{Stmts: stmts}, nil
}

type parser struct {
	lines []string
	pos   int
}

// errf builds a ParseError at the current line.
func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next meaningful line's fields, or nil at EOF.
func (p *parser) next() []string {
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		p.pos++
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return tokenize(line)
	}
	return nil
}

// tokenize splits a line into fields, honouring double quotes.
func tokenize(line string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for _, r := range line {
		switch {
		case r == '"':
			inQuote = !inQuote
		case !inQuote && (r == ' ' || r == '\t'):
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// block parses statements until EOF (or "end" when inLoop).
func (p *parser) block(inLoop bool) ([]Stmt, error) {
	var out []Stmt
	for {
		fields := p.next()
		if fields == nil {
			if inLoop {
				return nil, p.errf("unterminated foreach (missing end)")
			}
			return out, nil
		}
		switch fields[0] {
		case "end":
			if !inLoop {
				return nil, p.errf("end outside foreach")
			}
			return out, nil
		case "key":
			if len(fields) != 3 {
				return nil, p.errf("key wants: key <name> <bytes>")
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n <= 0 {
				return nil, p.errf("key length %q invalid", fields[2])
			}
			out = append(out, KeyStmt{Name: fields[1], Bytes: n})
		case "targets":
			if len(fields) < 2 {
				return nil, p.errf("targets wants at least one pattern")
			}
			out = append(out, TargetsStmt{Patterns: fields[1:]})
		case "note":
			if len(fields) < 3 {
				return nil, p.errf("note wants: note <name> <text>")
			}
			out = append(out, NoteStmt{Name: fields[1], Text: strings.Join(fields[2:], " ")})
		case "foreach":
			if len(fields) != 2 {
				return nil, p.errf("foreach wants: foreach <var>")
			}
			body, err := p.block(true)
			if err != nil {
				return nil, err
			}
			out = append(out, ForeachStmt{Var: fields[1], Body: body})
		case "read":
			if len(fields) != 3 {
				return nil, p.errf("read wants: read <path> <buf>")
			}
			out = append(out, ReadStmt{Path: Expr{raw: fields[1]}, Buf: fields[2]})
		case "encrypt":
			if len(fields) != 3 {
				return nil, p.errf("encrypt wants: encrypt <buf> <key>")
			}
			out = append(out, EncryptStmt{Buf: fields[1], Key: fields[2]})
		case "write":
			if len(fields) != 3 {
				return nil, p.errf("write wants: write <path> <buf>")
			}
			out = append(out, WriteStmt{Path: Expr{raw: fields[1]}, Buf: fields[2]})
		case "rename":
			if len(fields) != 3 {
				return nil, p.errf("rename wants: rename <from> <to>")
			}
			out = append(out, RenameStmt{From: Expr{raw: fields[1]}, To: Expr{raw: fields[2]}})
		case "delete":
			if len(fields) != 2 {
				return nil, p.errf("delete wants: delete <path>")
			}
			out = append(out, DeleteStmt{Path: Expr{raw: fields[1]}})
		default:
			return nil, p.errf("unknown command %q", fields[0])
		}
	}
}
