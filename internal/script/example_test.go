package script_test

import (
	"fmt"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/script"
	"cryptodrop/internal/vfs"
)

// Example runs a tiny interpreted encryptor against an unmonitored victim
// filesystem — the §V-E scenario where the "binary" is just text piped into
// an interpreter.
func Example() {
	src := `
targets *.txt
key k 16
foreach f
  read $f data
  encrypt data k
  write $f data
end
`
	fsys := vfs.New()
	m, err := corpus.Build(fsys, corpus.Spec{Seed: 8, Files: 40, Dirs: 5, SizeScale: 0.2, ReadOnlyFraction: -1})
	if err != nil {
		fmt.Println("corpus:", err)
		return
	}
	prog, err := script.Parse(src)
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	res, err := script.NewInterp(fsys, 1, m.Root, 8, nil).Run(prog)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Println("files encrypted:", res.FilesProcessed == len(m.ByExt("txt")))
	// Output:
	// files encrypted: true
}
