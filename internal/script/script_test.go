package script

import (
	"errors"
	"strings"
	"testing"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/entropy"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/vfs"
)

// poshCoder is the reference script: a PoshCoder-like Class A encryptor.
const poshCoder = `
# PoshCoder-like encrypting ransomware
key k 16
targets *.docx *.pdf *.txt *.xlsx *.jpg *.csv *.md
note HOW_TO_RECOVER.txt "ALL YOUR FILES ARE ENCRYPTED. PAY 1 BTC."
foreach f
  read $f buf
  encrypt buf k
  write $f buf
  rename $f $f.poshcoder
end
`

func TestParsePoshCoder(t *testing.T) {
	prog, err := Parse(poshCoder)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 4 {
		t.Fatalf("stmts = %d, want 4", len(prog.Stmts))
	}
	loop, ok := prog.Stmts[3].(ForeachStmt)
	if !ok {
		t.Fatalf("last stmt = %T, want ForeachStmt", prog.Stmts[3])
	}
	if len(loop.Body) != 4 || loop.Var != "f" {
		t.Fatalf("loop = %+v", loop)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"unknown command", "explode everything", "unknown command"},
		{"unterminated loop", "targets *.txt\nforeach f\nread $f b", "unterminated"},
		{"stray end", "end", "end outside"},
		{"bad key length", "key k zero", "invalid"},
		{"key arity", "key k", "key wants"},
		{"note arity", "note x", "note wants"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatal("no error")
			}
			var perr *ParseError
			if !errors.As(err, &perr) {
				t.Fatalf("error type %T", err)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("err = %v, want containing %q", err, tt.want)
			}
		})
	}
}

func TestTokenizeQuotes(t *testing.T) {
	got := tokenize(`note HOW.txt "pay us 1 BTC now"`)
	if len(got) != 3 || got[2] != "pay us 1 BTC now" {
		t.Fatalf("tokenize = %q", got)
	}
}

func TestExprEval(t *testing.T) {
	env := map[string]string{"f": "/docs/a.txt", "file": "/docs/b.txt"}
	if got := (Expr{raw: "$f.locked"}).Eval(env); got != "/docs/a.txt.locked" {
		t.Fatalf("eval = %q", got)
	}
	// Longest name wins: $file must not be clobbered by $f.
	if got := (Expr{raw: "$file"}).Eval(env); got != "/docs/b.txt" {
		t.Fatalf("eval $file = %q", got)
	}
}

// victimFS builds a small corpus with a monitor attached.
func victimFS(t *testing.T) (*vfs.FS, *corpus.Manifest, *proc.Table, *cryptodrop.Monitor) {
	t.Helper()
	fs := vfs.New()
	m, err := corpus.Build(fs, corpus.Spec{Seed: 60, Files: 250, Dirs: 30, SizeScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	procs := proc.NewTable()
	mon, err := cryptodrop.NewMonitor(fs, procs, cryptodrop.WithRoot(m.Root))
	if err != nil {
		t.Fatal(err)
	}
	return fs, m, procs, mon
}

func TestScriptRansomwareEncrypts(t *testing.T) {
	// Without a monitor, the script must genuinely encrypt.
	fs := vfs.New()
	m, err := corpus.Build(fs, corpus.Spec{Seed: 61, Files: 100, Dirs: 10, SizeScale: 0.25, ReadOnlyFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Parse(poshCoder)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewInterp(fs, 1, m.Root, 5, nil).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesProcessed == 0 || res.NotesDropped == 0 {
		t.Fatalf("result = %+v", res)
	}
	// A processed file must now be high-entropy ciphertext at a renamed
	// path.
	locked := 0
	err = fs.Walk(m.Root, func(info vfs.FileInfo) error {
		if strings.HasSuffix(info.Path, ".poshcoder") {
			locked++
			if locked == 1 && info.Size > 4096 {
				content, err := fs.ReadFileRaw(info.Path)
				if err != nil {
					t.Fatal(err)
				}
				if e := entropy.Shannon(content); e < 7.5 {
					t.Fatalf("encrypted file entropy %.2f", e)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if locked != res.FilesProcessed {
		t.Fatalf("%d locked files, %d processed", locked, res.FilesProcessed)
	}
}

func TestMonitorStopsScriptRansomware(t *testing.T) {
	fs, m, procs, mon := victimFS(t)
	prog, err := Parse(poshCoder)
	if err != nil {
		t.Fatal(err)
	}
	pid := procs.Spawn("powershell.exe")
	res, err := NewInterp(fs, pid, m.Root, 6, func() bool { return procs.Suspended(pid) }).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("script not stopped: %+v", res)
	}
	if len(mon.Detections()) != 1 {
		t.Fatal("no detection recorded")
	}
	if res.FilesProcessed > 25 {
		t.Fatalf("script processed %d files before suspension", res.FilesProcessed)
	}
}

func TestMorphedVariantBehavesIdentically(t *testing.T) {
	// §V-E: trivially morphing the script defeats signatures; CryptoDrop
	// detects the variant identically because the data transformations
	// are unchanged.
	morphed := Morph(poshCoder, 99)
	if morphed == poshCoder {
		t.Fatal("morph did not change the source")
	}
	if !strings.Contains(morphed, "#") {
		t.Fatal("morph added no comments")
	}

	run := func(src string) (int, bool) {
		fs, m, procs, mon := victimFS(t)
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		pid := procs.Spawn("powershell.exe")
		res, err := NewInterp(fs, pid, m.Root, 7, func() bool { return procs.Suspended(pid) }).Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		return res.FilesProcessed, len(mon.Detections()) == 1
	}
	origFiles, origDetected := run(poshCoder)
	morphFiles, morphDetected := run(morphed)
	if !origDetected || !morphDetected {
		t.Fatal("a variant escaped detection")
	}
	if origFiles != morphFiles {
		t.Fatalf("morphed variant behaved differently: %d vs %d files", origFiles, morphFiles)
	}
}

func TestScriptClassCDelete(t *testing.T) {
	// A Class C script: write a copy, delete the original.
	src := `
targets *.txt *.csv *.md
key k 32
foreach f
  read $f data
  encrypt data k
  write $f.enc data
  delete $f
end
`
	fs, m, procs, mon := victimFS(t)
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pid := procs.Spawn("script.exe")
	res, err := NewInterp(fs, pid, m.Root, 8, func() bool { return procs.Suspended(pid) }).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("Class C script not stopped: %+v", res)
	}
	rep, _ := mon.Report(pid)
	if rep.Deletes == 0 {
		t.Fatal("no deletes recorded")
	}
}
