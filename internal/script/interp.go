package script

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"math/rand"
	"path"
	"strings"

	"cryptodrop/internal/vfs"
)

// Result summarises a script execution.
type Result struct {
	// FilesProcessed counts foreach iterations completed.
	FilesProcessed int
	// NotesDropped counts ransom notes written.
	NotesDropped int
	// OpErrors counts failed filesystem operations.
	OpErrors int
	// Stopped reports the interpreter halted because stop() returned true
	// (the monitor suspended the process).
	Stopped bool
}

// Interp executes a Program against a virtual filesystem as one process —
// the in-memory interpreter that signature scanners never get to inspect.
type Interp struct {
	fs   *vfs.FS
	pid  int
	root string
	stop func() bool
	seed int64

	keys    map[string][]byte
	bufs    map[string][]byte
	targets []string
	note    *NoteStmt

	res       Result
	notedDirs map[string]bool
	fileNonce uint64
}

// NewInterp prepares an interpreter running as pid against the documents
// tree at root. stop, if non-nil, is polled between operations; seed drives
// key derivation.
func NewInterp(fsys *vfs.FS, pid int, root string, seed int64, stop func() bool) *Interp {
	if stop == nil {
		stop = func() bool { return false }
	}
	return &Interp{
		fs: fsys, pid: pid, root: root, stop: stop, seed: seed,
		keys:      make(map[string][]byte),
		bufs:      make(map[string][]byte),
		notedDirs: make(map[string]bool),
	}
}

// Run executes the program. Filesystem op failures are counted, not fatal
// (malware shrugs them off); genuine interpreter errors (unknown buffer,
// missing key) abort.
func (in *Interp) Run(prog *Program) (Result, error) {
	for _, st := range prog.Stmts {
		if in.stop() {
			in.res.Stopped = true
			return in.res, nil
		}
		if err := in.exec(st, nil); err != nil {
			return in.res, err
		}
		if in.res.Stopped {
			return in.res, nil
		}
	}
	return in.res, nil
}

// exec runs one statement with the given variable environment.
func (in *Interp) exec(st Stmt, env map[string]string) error {
	switch s := st.(type) {
	case KeyStmt:
		rng := rand.New(rand.NewSource(in.seed ^ int64(len(s.Name))<<32))
		key := make([]byte, s.Bytes)
		rng.Read(key)
		in.keys[s.Name] = key
		return nil
	case TargetsStmt:
		in.targets = s.Patterns
		return nil
	case NoteStmt:
		note := s
		in.note = &note
		return nil
	case ForeachStmt:
		return in.execForeach(s)
	case ReadStmt:
		return in.execRead(s, env)
	case EncryptStmt:
		return in.execEncrypt(s)
	case WriteStmt:
		return in.execWrite(s, env)
	case RenameStmt:
		from := s.From.Eval(env)
		to := s.To.Eval(env)
		if err := in.fs.Rename(in.pid, from, to); err != nil {
			in.res.OpErrors++
		} else if cur, ok := env["__current"]; ok && cur == from {
			env["__current"] = to
		}
		return nil
	case DeleteStmt:
		if err := in.fs.Delete(in.pid, s.Path.Eval(env)); err != nil {
			in.res.OpErrors++
		}
		return nil
	default:
		return fmt.Errorf("script: unsupported statement %T", st)
	}
}

// execForeach iterates the victim files matching the target patterns.
func (in *Interp) execForeach(s ForeachStmt) error {
	if len(in.targets) == 0 {
		return fmt.Errorf("script: foreach without targets")
	}
	var victims []string
	err := in.fs.Walk(in.root, func(info vfs.FileInfo) error {
		if info.IsDir {
			return nil
		}
		base := path.Base(info.Path)
		for _, pat := range in.targets {
			if ok, _ := path.Match(pat, base); ok {
				victims = append(victims, info.Path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("script: enumerate: %w", err)
	}
	for _, victim := range victims {
		if in.stop() {
			in.res.Stopped = true
			return nil
		}
		if in.note != nil {
			dir := path.Dir(victim)
			if !in.notedDirs[dir] {
				in.notedDirs[dir] = true
				if err := in.fs.WriteFile(in.pid, path.Join(dir, in.note.Name), []byte(in.note.Text)); err != nil {
					in.res.OpErrors++
				} else {
					in.res.NotesDropped++
				}
			}
		}
		env := map[string]string{s.Var: victim, "__current": victim}
		for _, st := range s.Body {
			if in.stop() {
				in.res.Stopped = true
				return nil
			}
			if err := in.exec(st, env); err != nil {
				return err
			}
		}
		in.res.FilesProcessed++
	}
	return nil
}

func (in *Interp) execRead(s ReadStmt, env map[string]string) error {
	p := s.Path.Eval(env)
	h, err := in.fs.Open(in.pid, p, vfs.ReadOnly)
	if err != nil {
		in.res.OpErrors++
		in.bufs[s.Buf] = nil
		return nil
	}
	var content []byte
	buf := make([]byte, 32*1024)
	for {
		n, rerr := h.Read(buf)
		if rerr != nil {
			in.res.OpErrors++
			break
		}
		if n == 0 {
			break
		}
		content = append(content, buf[:n]...)
	}
	if err := h.Close(); err != nil {
		in.res.OpErrors++
	}
	in.bufs[s.Buf] = content
	return nil
}

func (in *Interp) execEncrypt(s EncryptStmt) error {
	key, ok := in.keys[s.Key]
	if !ok {
		return fmt.Errorf("script: unknown key %q", s.Key)
	}
	content, ok := in.bufs[s.Buf]
	if !ok {
		return fmt.Errorf("script: unknown buffer %q", s.Buf)
	}
	if len(content) == 0 {
		return nil
	}
	// AES-CTR with a per-file nonce, like the compiled families.
	block, err := aes.NewCipher(pad16(key))
	if err != nil {
		return fmt.Errorf("script: cipher: %w", err)
	}
	in.fileNonce++
	iv := make([]byte, aes.BlockSize)
	for i := 0; i < 8; i++ {
		iv[i] = byte(in.fileNonce >> (8 * i))
	}
	out := make([]byte, len(content))
	cipher.NewCTR(block, iv).XORKeyStream(out, content)
	in.bufs[s.Buf] = out
	return nil
}

// pad16 stretches or truncates a key to AES-128 length.
func pad16(key []byte) []byte {
	out := make([]byte, 16)
	for i := range out {
		out[i] = key[i%len(key)]
	}
	return out
}

func (in *Interp) execWrite(s WriteStmt, env map[string]string) error {
	content, ok := in.bufs[s.Buf]
	if !ok {
		return fmt.Errorf("script: unknown buffer %q", s.Buf)
	}
	p := s.Path.Eval(env)
	h, err := in.fs.Open(in.pid, p, vfs.WriteOnly|vfs.Create|vfs.Truncate)
	if err != nil {
		in.res.OpErrors++
		return nil
	}
	for off := 0; off < len(content); off += 16 * 1024 {
		end := off + 16*1024
		if end > len(content) {
			end = len(content)
		}
		if _, err := h.Write(content[off:end]); err != nil {
			in.res.OpErrors++
			break
		}
	}
	if err := h.Close(); err != nil {
		in.res.OpErrors++
	}
	return nil
}

// Morph returns a source-level variant of a script: comments, blank lines
// and variable renamings that change every byte a signature could match
// while preserving behaviour — the §V-E "add a single character and
// resubmit" experiment, automated.
func Morph(src string, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	junkWords := []string{"invoice", "totally", "legit", "updater", "helper", "svc"}
	var out strings.Builder
	fmt.Fprintf(&out, "# %s %s build %d\n", junkWords[rng.Intn(len(junkWords))], junkWords[rng.Intn(len(junkWords))], rng.Intn(10000))
	for _, line := range strings.Split(src, "\n") {
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&out, "# %x\n", rng.Uint32())
		}
		out.WriteString(line)
		out.WriteString("\n")
	}
	// Rename buffer/key identifiers consistently, on whole-token
	// boundaries so trailing occurrences are covered too.
	renames := map[string]string{
		"buf": fmt.Sprintf("b%d", rng.Intn(1000)),
		"k":   fmt.Sprintf("q%d", rng.Intn(1000)),
	}
	var renamed []string
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			renamed = append(renamed, line)
			continue
		}
		fields := strings.Fields(line)
		for i, f := range fields {
			if to, ok := renames[f]; ok {
				fields[i] = to
			}
		}
		renamed = append(renamed, strings.Join(fields, " "))
	}
	return strings.Join(renamed, "\n")
}
