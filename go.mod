module cryptodrop

go 1.22
