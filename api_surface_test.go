package cryptodrop_test

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// TestPublicAPISurface pins the exported API of the root package and
// internal/host against golden snapshots, so any surface change — a new
// export, a signature change, a removal — shows up as an explicit diff in
// review instead of slipping through. Regenerate after an intentional
// change with:
//
//	UPDATE_API_GOLDEN=1 go test . -run TestPublicAPISurface
func TestPublicAPISurface(t *testing.T) {
	for _, tc := range []struct{ name, dir, golden string }{
		{"cryptodrop", ".", "testdata/api_cryptodrop.golden"},
		{"host", "internal/host", "testdata/api_host.golden"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := apiSurface(t, tc.dir)
			if os.Getenv("UPDATE_API_GOLDEN") != "" {
				if err := os.WriteFile(tc.golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("regenerated %s", tc.golden)
				return
			}
			want, err := os.ReadFile(tc.golden)
			if err != nil {
				t.Fatalf("missing golden snapshot (regenerate with UPDATE_API_GOLDEN=1): %v", err)
			}
			if got != string(want) {
				t.Errorf("exported API of %s changed:\n%s\nIf intentional, regenerate with UPDATE_API_GOLDEN=1.",
					tc.dir, surfaceDiff(string(want), got))
			}
		})
	}
}

// apiSurface renders the exported declarations of the package in dir, one
// normalised declaration per sorted line.
func apiSurface(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lines = append(lines, declSurface(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// declSurface renders the exported parts of one top-level declaration.
func declSurface(fset *token.FileSet, decl ast.Decl) []string {
	var lines []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d) {
			return nil
		}
		cp := *d
		cp.Body = nil
		cp.Doc = nil
		lines = append(lines, renderNode(fset, &cp))
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() {
					lines = append(lines, "type "+renderNode(fset, sp))
				}
			case *ast.ValueSpec:
				for _, n := range sp.Names {
					if n.IsExported() {
						lines = append(lines, fmt.Sprintf("%s %s", d.Tok, n.Name))
					}
				}
			}
		}
	}
	return lines
}

// exportedRecv reports whether a method's receiver type is itself exported
// (methods on unexported types are not API surface).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr:
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// renderNode prints the node and collapses it onto one line.
func renderNode(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<unprintable: %v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// surfaceDiff reports added and removed lines between two surfaces.
func surfaceDiff(want, got string) string {
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool)
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for l := range gotSet {
		if !wantSet[l] {
			fmt.Fprintf(&b, "  + %s\n", l)
		}
	}
	for l := range wantSet {
		if !gotSet[l] {
			fmt.Fprintf(&b, "  - %s\n", l)
		}
	}
	return b.String()
}
