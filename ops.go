package cryptodrop

// Op constructors for producers feeding host sessions or the wire client —
// the builders behind Session.Submit and the detection service's ingest
// stream. Each returns one canonical host.Op so producers never hand-fill
// the struct: event kinds, write-intent flags, staged-content maps and
// eviction lists are easy to get subtly wrong (a missing Wrote bit or Evict
// entry silently skews scoring or leaks overlay memory).
//
// The file ID is the producer's stable identity for a file across renames —
// any uint64 scheme works as long as it is consistent within a session.
// Staged content (before/after) rides in the op and is evicted from the
// session's overlay as soon as the op is scored; producers therefore need
// no server-side filesystem at all.

import "cryptodrop/internal/core"

// OpBaseline seeds the engine's pre-state for an existing file without
// scoring a modification: an open-for-write announcement staging the file's
// current content. Stream it once per protected file before the ops that
// modify it, so the first real change measures similarity and entropy
// against the true original rather than an empty baseline.
func OpBaseline(pid int, path string, id uint64, content []byte) Op {
	return Op{
		PreEvent: &core.Event{
			Kind: EvOpen, PID: pid, Path: path, FileID: id,
			Flags: EvWriteIntent, Size: int64(len(content)),
		},
		Pre:   map[uint64][]byte{id: content},
		Evict: []uint64{id},
	}
}

// OpWrite captures one full rewrite cycle — open with write intent, modify,
// close — in a single op: before is the content the writer found, after the
// content it left. This is the workhorse for producers that observe whole
// file versions (editor saves, ransomware rewrites).
func OpWrite(pid int, path string, id uint64, before, after []byte) Op {
	return Op{
		PreEvent: &core.Event{
			Kind: EvOpen, PID: pid, Path: path, FileID: id,
			Flags: EvWriteIntent, Size: int64(len(before)),
		},
		Pre: map[uint64][]byte{id: before},
		Event: core.Event{
			Kind: EvClose, PID: pid, Path: path, FileID: id,
			Size: int64(len(after)), Wrote: true,
		},
		Post:  map[uint64][]byte{id: after},
		Evict: []uint64{id},
	}
}

// OpClose scores a written-to file closing with the given final content,
// when the open was announced earlier (OpBaseline or OpCreate). Producers
// that cannot pair opens with closes should prefer OpWrite.
func OpClose(pid int, path string, id uint64, after []byte) Op {
	return Op{
		Event: core.Event{
			Kind: EvClose, PID: pid, Path: path, FileID: id,
			Size: int64(len(after)), Wrote: true,
		},
		Post:  map[uint64][]byte{id: after},
		Evict: []uint64{id},
	}
}

// OpCreate announces a file born under the watch; the creating process owns
// its subsequent modifications.
func OpCreate(pid int, path string, id uint64) Op {
	return Op{Event: core.Event{
		Kind: EvCreate, PID: pid, Path: path, FileID: id,
		Flags: EvWriteIntent | EvCreateIntent,
	}}
}

// OpDelete scores a file removal — the bulk-deletion secondary indicator's
// input.
func OpDelete(pid int, path string, id uint64) Op {
	return Op{Event: core.Event{Kind: EvDelete, PID: pid, Path: path, FileID: id}}
}

// OpRename scores a rename; with a changed extension it feeds the
// file-type funneling indicator.
func OpRename(pid int, oldPath, newPath string, id uint64) Op {
	return Op{Event: core.Event{
		Kind: EvRename, PID: pid, Path: oldPath, NewPath: newPath, FileID: id,
	}}
}
