// Package cryptodrop is an early-warning detection system for encrypting
// ransomware, reproducing "CryptoLock (and Drop It): Stopping Ransomware
// Attacks on User Data" (Scaife, Carter, Traynor, Butler — ICDCS 2016).
//
// A Monitor attaches the CryptoDrop analysis engine to a virtual filesystem
// through a minifilter chain, watches every read, write, rename and delete
// under the user's protected documents tree, and scores each process on a
// reputation scoreboard built from three primary indicators (file type
// change, similarity loss, entropy delta) and two secondary ones (bulk
// deletion, file-type funneling). When a process crosses its detection
// threshold, the monitor suspends the process family's disk access and
// reports the detection.
//
// Quickstart:
//
//	fsys := vfs.New()
//	corpus.Build(fsys, corpus.Spec{Seed: 1})
//	procs := proc.NewTable()
//	mon, err := cryptodrop.NewMonitor(fsys, procs)
//	// ... run workloads; consult mon.Detections() / mon.Report(pid).
package cryptodrop

import (
	"errors"
	"fmt"
	"sync"

	"cryptodrop/internal/core"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/filter"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/vfs"
	"cryptodrop/internal/vfsadapter"
)

// ErrSuspended is returned to a process whose disk access CryptoDrop has
// suspended pending user review.
var ErrSuspended = errors.New("cryptodrop: process suspended pending user review")

// Re-exported engine types forming the public API surface.
type (
	// Detection reports a process crossing its detection threshold.
	Detection = core.Detection
	// Indicator identifies a behavioural indicator.
	Indicator = core.Indicator
	// ProcessReport is a scoreboard snapshot for one process.
	ProcessReport = core.ProcessReport
	// ScorePoint is one step of a process's score trajectory.
	ScorePoint = core.ScorePoint
	// Points are the per-indicator score values.
	Points = core.Points
)

// Re-exported indicator constants.
const (
	IndicatorTypeChange   = core.IndicatorTypeChange
	IndicatorSimilarity   = core.IndicatorSimilarity
	IndicatorEntropyDelta = core.IndicatorEntropyDelta
	IndicatorDeletion     = core.IndicatorDeletion
	IndicatorFunneling    = core.IndicatorFunneling
)

// Filter altitudes: CryptoDrop sits in the anti-virus filter range; the
// enforcement filter sits above everything so suspended processes are cut
// off before any other filter sees their operations.
const (
	altitudeEnforce = 400000
	altitudeEngine  = 328000
)

// DefaultProtectedRoot is the documents tree monitored by default.
const DefaultProtectedRoot = corpus.DefaultRoot

// Option configures a Monitor.
type Option func(*options)

type options struct {
	cfg           core.Config
	onDetection   func(Detection)
	enforce       bool
	familyScoring bool
}

// WithRoot sets the protected documents directory (default
// DefaultProtectedRoot).
func WithRoot(root string) Option {
	return func(o *options) { o.cfg.ProtectedRoot = root }
}

// WithNonUnionThreshold overrides the non-union detection threshold
// (default 200, the paper's experimental setting).
func WithNonUnionThreshold(t float64) Option {
	return func(o *options) { o.cfg.NonUnionThreshold = t }
}

// WithUnionThreshold overrides the effective threshold applied once union
// indication has fired.
func WithUnionThreshold(t float64) Option {
	return func(o *options) { o.cfg.UnionThreshold = t }
}

// WithPoints overrides the per-indicator score values.
func WithPoints(p Points) Option {
	return func(o *options) { o.cfg.Points = p }
}

// DefaultPoints returns the calibrated default per-indicator score values,
// as a starting point for WithPoints adjustments.
func DefaultPoints() Points { return core.DefaultPoints() }

// WithUnionDisabled turns union indication off (ablation studies).
func WithUnionDisabled() Option {
	return func(o *options) { o.cfg.DisableUnion = true }
}

// WithUnweightedEntropy replaces the paper's entropy-operation weighting
// with plain byte weighting (ablation studies).
func WithUnweightedEntropy() Option {
	return func(o *options) { o.cfg.UnweightedEntropy = true }
}

// WithDisabledIndicators suppresses the listed indicators (ablation
// studies).
func WithDisabledIndicators(inds ...Indicator) Option {
	return func(o *options) { o.cfg.DisabledIndicators = append(o.cfg.DisabledIndicators, inds...) }
}

// WithFamilyScoring aggregates scores across process families: every
// process is scored against its root ancestor's scoreboard entry, so
// malware cannot dilute its reputation by spreading the attack over spawned
// workers. The detection then names (and suspends) the family root.
func WithFamilyScoring() Option {
	return func(o *options) { o.familyScoring = true }
}

// WithMeasureWorkers bounds how many file measurements (similarity digest,
// entropy, type sniff) may run concurrently off the event path. Zero — the
// default — keeps every measurement synchronous, bit-identical to the
// sequential engine; DefaultMeasureWorkers sizes the pool to the machine.
// Detection verdicts and scores are unchanged either way: only the point in
// the operation stream where a transformation's score lands may shift by a
// few operations for the affected process.
func WithMeasureWorkers(n int) Option {
	return func(o *options) { o.cfg.Workers = n }
}

// DefaultMeasureWorkers returns the measurement pool size matched to the
// machine, for use with WithMeasureWorkers.
func DefaultMeasureWorkers() int { return core.DefaultWorkers() }

// WithDetectionHandler registers a callback invoked once per detection,
// after the process family has been suspended.
func WithDetectionHandler(fn func(Detection)) Option {
	return func(o *options) { o.onDetection = fn }
}

// WithoutEnforcement disables process suspension: detections are recorded
// but flagged processes keep running (measurement-only mode, used by the
// false-positive threshold sweeps).
func WithoutEnforcement() Option {
	return func(o *options) { o.enforce = false }
}

// WithTelemetry attaches a metrics registry to the monitor: the engine,
// filter chain and filesystem all record into it. A nil registry (the
// default) disables collection; the instrumented paths then cost one nil
// check each.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(o *options) { o.cfg.Telemetry = reg }
}

// WithFlightRecorder attaches a detection flight recorder capturing the
// ordered indicator firings behind every scoreboard change, so each
// detection can be explained after the fact (see telemetry.FlightRecorder).
func WithFlightRecorder(fr *telemetry.FlightRecorder) Option {
	return func(o *options) { o.cfg.FlightRecorder = fr }
}

// Monitor binds the CryptoDrop analysis engine, a filter chain and a
// process table to one filesystem.
type Monitor struct {
	fs     *vfs.FS
	procs  *proc.Table
	chain  *filter.Chain
	engine *core.Engine

	mu         sync.Mutex
	exempt     map[int]bool
	detections []Detection

	onDetection func(Detection)
	enforce     bool
}

// enforcement vetoes operations from suspended, non-exempt processes.
type enforcement struct{ m *Monitor }

var _ filter.Filter = (*enforcement)(nil)

// Name identifies the enforcement filter.
func (enforcement) Name() string { return "cryptodrop-enforce" }

// PreOp denies suspended processes.
func (f enforcement) PreOp(op *vfs.Op) error {
	if f.m.procs.Suspended(op.PID) && !f.m.isExempt(op.PID) {
		return fmt.Errorf("pid %d: %w", op.PID, ErrSuspended)
	}
	return nil
}

// PostOp is a no-op for the enforcement filter.
func (enforcement) PostOp(op *vfs.Op) {}

var _ filter.Filter = (*vfsadapter.Filter)(nil)

// NewMonitor attaches CryptoDrop to fsys, scoring processes registered in
// procs. The filesystem's interceptor is replaced with the monitor's filter
// chain; other filters (e.g. a simulated anti-virus) may be attached to
// Chain afterwards.
func NewMonitor(fsys *vfs.FS, procs *proc.Table, opts ...Option) (*Monitor, error) {
	o := options{cfg: core.DefaultConfig(DefaultProtectedRoot), enforce: true}
	for _, opt := range opts {
		opt(&o)
	}
	m := &Monitor{
		fs:          fsys,
		procs:       procs,
		chain:       &filter.Chain{},
		exempt:      make(map[int]bool),
		onDetection: o.onDetection,
		enforce:     o.enforce,
	}
	o.cfg.OnDetection = m.handleDetection
	if o.familyScoring {
		o.cfg.FamilyOf = procs.RootOf
	}
	m.engine = core.New(o.cfg, vfsadapter.Source(fsys))
	if o.cfg.Telemetry != nil {
		m.chain.SetTelemetry(o.cfg.Telemetry)
		fsys.SetTelemetry(o.cfg.Telemetry)
	}
	if err := m.chain.Attach(altitudeEnforce, enforcement{m}); err != nil {
		return nil, fmt.Errorf("attach enforcement: %w", err)
	}
	if err := m.chain.Attach(altitudeEngine, vfsadapter.New(m.engine)); err != nil {
		return nil, fmt.Errorf("attach engine: %w", err)
	}
	fsys.SetInterceptor(m.chain)
	return m, nil
}

// handleDetection suspends the flagged family and records the detection.
func (m *Monitor) handleDetection(d Detection) {
	if m.enforce {
		m.procs.SuspendFamily(d.PID)
	}
	m.mu.Lock()
	m.detections = append(m.detections, d)
	cb := m.onDetection
	m.mu.Unlock()
	if cb != nil {
		cb(d)
	}
}

func (m *Monitor) isExempt(pid int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.exempt[pid]
}

// Allow records the user's decision to let a flagged process continue: the
// process family is resumed and exempted from further enforcement.
func (m *Monitor) Allow(pid int) error {
	m.mu.Lock()
	m.exempt[pid] = true
	m.mu.Unlock()
	return m.procs.Resume(pid)
}

// Chain exposes the filter chain so additional filters (anti-virus and the
// like) can be attached; CryptoDrop's behaviour is independent of their
// relative altitude.
func (m *Monitor) Chain() *filter.Chain { return m.chain }

// Detections returns all detections in occurrence order.
func (m *Monitor) Detections() []Detection {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Detection, len(m.detections))
	copy(out, m.detections)
	return out
}

// Report returns the scoreboard snapshot for pid.
func (m *Monitor) Report(pid int) (ProcessReport, bool) { return m.engine.Report(pid) }

// Reports returns snapshots for every scored process, ordered by PID.
func (m *Monitor) Reports() []ProcessReport { return m.engine.Reports() }

// OpCount returns the number of protected-scope operations analysed.
func (m *Monitor) OpCount() int64 { return m.engine.OpIndex() }
