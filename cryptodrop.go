// Package cryptodrop is an early-warning detection system for encrypting
// ransomware, reproducing "CryptoLock (and Drop It): Stopping Ransomware
// Attacks on User Data" (Scaife, Carter, Traynor, Butler — ICDCS 2016).
//
// A Monitor attaches the CryptoDrop analysis engine to a virtual filesystem
// through a minifilter chain, watches every read, write, rename and delete
// under the user's protected documents tree, and scores each process on a
// reputation scoreboard built from three primary indicators (file type
// change, similarity loss, entropy delta) and two secondary ones (bulk
// deletion, file-type funneling). When a process crosses its detection
// threshold, the monitor suspends the process family's disk access and
// reports the detection.
//
// Quickstart:
//
//	fsys := vfs.New()
//	corpus.Build(fsys, corpus.Spec{Seed: 1})
//	procs := proc.NewTable()
//	mon, err := cryptodrop.NewMonitor(fsys, procs)
//	// ... run workloads; consult mon.Detections() / mon.Report(pid).
//
// A Monitor is a thin convenience over the multi-session Host: it opens one
// direct (unqueued) session and wires it to the filesystem's filter chain.
// Services that watch many volumes or tenants use NewHost directly — each
// Host session is an independent engine behind a bounded ingest queue with
// backpressure and graceful degradation; see the internal/host package doc,
// mirrored here through the Host/Session/SessionConfig/Op aliases.
//
// # Errors
//
// Failures wrap typed sentinels, so callers dispatch with errors.Is:
//
//	ErrSuspended          operation vetoed: the acting process family is suspended pending review
//	ErrSessionClosed      submit/flush on a host session that was closed or evicted
//	ErrOverloaded         non-blocking submit found a session's ingest queue full
//	ErrSessionExists      Host.Open with a session ID already in use
//	ErrHostClosed         Host.Open after Shutdown
//	ErrSnapshotMismatch   restore refused: the snapshot was sealed under a different indicator registry or scoring configuration
//	ErrSnapshotCorrupt    restore refused: snapshot bytes fail structural or checksum validation
//	ErrUnauthorized       detection service: the request's bearer token matched no configured tenant
//	ErrRateLimited        detection service: the tenant's ingest budget is spent; retry after the interval the response names
//
// The service sentinels round-trip the wire: a remote producer using the
// ingest client gets the same errors.Is behaviour as an in-process caller
// (ErrOverloaded on a saturated queue, ErrSessionClosed on a gone session,
// and so on). Context-first methods are the canonical surface; the
// context-free spellings (Monitor.Close, Host.Close, Host.EvictIdle) remain
// as deprecated wrappers.
package cryptodrop

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cryptodrop/internal/audit"
	"cryptodrop/internal/core"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/filter"
	"cryptodrop/internal/host"
	"cryptodrop/internal/indicator"
	"cryptodrop/internal/measurecache"
	"cryptodrop/internal/policy"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/recovery"
	"cryptodrop/internal/server/wire"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/vfs"
	"cryptodrop/internal/vfs/versioned"
	"cryptodrop/internal/vfsadapter"
)

// ErrSuspended is returned to a process whose disk access CryptoDrop has
// suspended pending user review.
var ErrSuspended = errors.New("cryptodrop: process suspended pending user review")

// Sentinel errors of the hosting layer, re-exported so embedders need only
// this package. See the package-doc errors table.
var (
	ErrSessionClosed = host.ErrSessionClosed
	ErrOverloaded    = host.ErrOverloaded
	ErrSessionExists = host.ErrSessionExists
	ErrHostClosed    = host.ErrHostClosed
)

// Sentinel errors of the detection service (cmd/cdserver and its ingest
// client): admission refusals a remote producer dispatches on. Both are
// carried across the wire as typed codes, so errors.Is works identically on
// either side of the connection.
var (
	ErrUnauthorized = wire.ErrUnauthorized
	ErrRateLimited  = wire.ErrRateLimited
)

// Sentinel errors of the durability layer (WithCheckpoint,
// HostConfig.CheckpointDir): a refused restore dispatches on these with
// errors.Is. A mismatch additionally carries the diverging identity field
// ("registry" or "config") retrievable via errors.As on
// *snapshot.MismatchError.
var (
	ErrSnapshotMismatch = core.ErrSnapshotMismatch
	ErrSnapshotCorrupt  = core.ErrSnapshotCorrupt
)

// Re-exported engine types forming the public API surface.
type (
	// Detection reports a process crossing its detection threshold.
	Detection = core.Detection
	// Indicator identifies a behavioural indicator.
	Indicator = core.Indicator
	// ProcessReport is a scoreboard snapshot for one process.
	ProcessReport = core.ProcessReport
	// ScorePoint is one step of a process's score trajectory.
	ScorePoint = core.ScorePoint
	// Points are the per-indicator score values.
	Points = core.Points
	// EngineConfig is the full detection-engine configuration, for host
	// sessions built without the Monitor option helpers.
	EngineConfig = core.Config
	// Event is one backend-neutral file operation, the unit every engine
	// backend produces.
	Event = core.Event
	// EventKind identifies the operation an Event describes.
	EventKind = core.EventKind
	// EventFlag carries open-intent bits on create/open events.
	EventFlag = core.EventFlag
	// ContentSource supplies file content by stable file ID.
	ContentSource = core.ContentSource
	// RangeReader is the optional ContentSource capability for serving byte
	// ranges; the sampled measurement tier and incremental entropy use it to
	// read only the bytes they need.
	RangeReader = core.RangeReader
	// MeasureCache is a bounded content-hash measurement memo cache,
	// shareable across engines and host sessions. Create with
	// NewMeasureCache.
	MeasureCache = measurecache.Cache
	// MeasureCacheStats is a point-in-time snapshot of a MeasureCache's
	// hit/miss/eviction counters and occupancy.
	MeasureCacheStats = measurecache.Stats
	// MeasureTier selects the measurement ladder tier an engine scores on:
	// TierFull (default) or TierSampled.
	MeasureTier = core.MeasureTier
	// SpanTracer is the sampling causal span tracer behind WithSpanTracer;
	// create with NewSpanTracer, export with its WriteChromeTrace.
	SpanTracer = telemetry.SpanTracer
	// AuditSink receives one AuditBundle per detection (WithAuditSink).
	AuditSink = audit.Sink
	// AuditBundle is the self-contained record of one detection: score
	// composition, causal firing history, touched files, engine and registry
	// identity, measurement state.
	AuditBundle = audit.Bundle
	// VersionStore retains copy-on-write pre-images of files modified by
	// not-yet-cleared process groups, out of reach of shadow-copy deletion.
	// Create with NewVersionStore and arm with WithRecovery.
	VersionStore = versioned.Store
	// VersionStoreStats is a snapshot of a VersionStore's retention state.
	VersionStoreStats = versioned.Stats
	// RecoveryOutcome summarises one detection-triggered rollback; see
	// Monitor.Recoveries and SessionReport.Recoveries.
	RecoveryOutcome = host.RecoveryOutcome
	// Recoverer is the host-session rollback hook (SessionConfig.Recoverer),
	// for host services wiring detect-then-recover without the Monitor.
	Recoverer = host.Recoverer
)

// NewVersionStore returns a pre-image retention store bounded to roughly
// maxBytes of retained content (<= 0: unbounded). Hand it to WithRecovery;
// consult Stats for retention counters.
func NewVersionStore(maxBytes int64) *VersionStore { return versioned.NewStore(maxBytes) }

// The measurement ladder tiers. TierSampled is the cheap tier: header-area
// sampling with per-process escalation to TierFull on the first indicator
// firing.
const (
	TierFull    = core.TierFull
	TierSampled = core.TierSampled
)

// NewMeasureCache returns a measurement memo cache bounded to roughly
// maxBytes of cached state. Hand it to WithMeasureCache,
// EngineConfig.MeasureCache or HostConfig.MeasureCache; one cache may be
// shared by any number of engines and sessions.
func NewMeasureCache(maxBytes int64) *MeasureCache { return measurecache.New(maxBytes) }

// NewSpanTracer returns a span tracer ringing over capacity spans (zero:
// telemetry.DefaultSpanCapacity), recording one in sampleEvery sampled
// operations (values below 1 mean every operation). Hand it to
// WithSpanTracer or EngineConfig.SpanTracer; one tracer may be shared by
// many sessions, whose spans then interleave in one timeline under
// per-session lanes.
func NewSpanTracer(capacity, sampleEvery int) *SpanTracer {
	return telemetry.NewSpanTracer(capacity, sampleEvery)
}

// Re-exported indicator-pipeline types: the registry of pluggable indicator
// units the engine scores with, and the detection policy that fuses awards
// into a verdict. See internal/indicator and internal/policy for the layer
// contracts, and DESIGN.md ("Indicator pipeline") for how the layers fit.
type (
	// IndicatorRegistry is an immutable set of indicator units; compose
	// with DefaultIndicators().With(...) / .Without(...).
	IndicatorRegistry = indicator.Registry
	// IndicatorUnit is one pluggable behavioural indicator.
	IndicatorUnit = indicator.Unit
	// IndicatorDecl is a unit's static declaration.
	IndicatorDecl = indicator.Decl
	// IndicatorContext is the measured-state window a unit evaluates over.
	IndicatorContext = indicator.Context
	// HoneyfileIndicator is the opt-in SentryFS-style decoy-touch unit.
	HoneyfileIndicator = indicator.HoneyfileUnit
	// Policy decides when a scoring group's evidence becomes a detection.
	Policy = policy.Policy
	// MajorityPolicy accelerates detection once a quorum of distinct
	// indicators has fired (Davies et al.-style majority voting).
	MajorityPolicy = policy.Majority
)

// DefaultIndicators returns the paper's indicator set — the registry the
// engine uses when no WithIndicators option is given.
func DefaultIndicators() *IndicatorRegistry { return indicator.Default() }

// NewHoneyfileIndicator returns the decoy-touch indicator guarding exactly
// the given planted paths. Compose it into a registry with
// DefaultIndicators().With(...); plant the decoys first (the unit only
// matches paths, it does not create files).
func NewHoneyfileIndicator(paths ...string) *HoneyfileIndicator {
	return indicator.NewHoneyfile(paths...)
}

// NewUnionPolicy returns the paper's default detection policy: union
// indication over the three primary indicators with the given score bonus.
func NewUnionPolicy(bonus float64) Policy { return policy.NewUnion(bonus, false) }

// Re-exported multi-session hosting types: a Host owns N detector Sessions,
// each an independent engine behind a bounded ingest queue with explicit
// backpressure and overload degradation. See internal/host for semantics.
type (
	// Host multiplexes many detector sessions through one process.
	Host = host.Host
	// HostConfig configures a Host.
	HostConfig = host.Config
	// Session is one detector instance inside a Host.
	Session = host.Session
	// SessionConfig configures one detector session.
	SessionConfig = host.SessionConfig
	// SessionReport is the final snapshot returned when a session closes.
	SessionReport = host.SessionReport
	// Op is one unit of session ingest: an event plus staged content.
	Op = host.Op
)

// NewHost returns an empty multi-session detector host.
func NewHost(cfg HostConfig) *Host { return host.New(cfg) }

// DefaultEngineConfig returns the paper's calibrated engine configuration
// protecting root, the starting point for host SessionConfigs.
func DefaultEngineConfig(root string) EngineConfig { return core.DefaultConfig(root) }

// Re-exported event kinds and open-intent flags, for producers feeding host
// sessions directly.
const (
	EvCreate = core.EvCreate
	EvOpen   = core.EvOpen
	EvRead   = core.EvRead
	EvWrite  = core.EvWrite
	EvClose  = core.EvClose
	EvDelete = core.EvDelete
	EvRename = core.EvRename

	EvReadIntent   = core.EvReadIntent
	EvWriteIntent  = core.EvWriteIntent
	EvCreateIntent = core.EvCreateIntent
	EvTruncate     = core.EvTruncate
	EvAppend       = core.EvAppend
)

// Re-exported indicator constants. IndicatorHoneyfile is the opt-in
// decoy-touch indicator; the rest are the paper's default set.
const (
	IndicatorTypeChange   = core.IndicatorTypeChange
	IndicatorSimilarity   = core.IndicatorSimilarity
	IndicatorEntropyDelta = core.IndicatorEntropyDelta
	IndicatorDeletion     = core.IndicatorDeletion
	IndicatorFunneling    = core.IndicatorFunneling
	IndicatorHoneyfile    = core.IndicatorHoneyfile
)

// Filter altitudes: CryptoDrop sits in the anti-virus filter range; the
// enforcement filter sits above everything so suspended processes are cut
// off before any other filter sees their operations.
const (
	altitudeEnforce = 400000
	altitudeEngine  = 328000
)

// DefaultProtectedRoot is the documents tree monitored by default.
const DefaultProtectedRoot = corpus.DefaultRoot

// Option configures a Monitor.
type Option func(*options)

type options struct {
	cfg             core.Config
	onDetection     func(Detection)
	enforce         bool
	familyScoring   bool
	checkpointDir   string
	checkpointEvery int
	restore         bool
	versions        *VersionStore
}

// WithRoot sets the protected documents directory (default
// DefaultProtectedRoot).
func WithRoot(root string) Option {
	return func(o *options) { o.cfg.ProtectedRoot = root }
}

// WithNonUnionThreshold overrides the non-union detection threshold
// (default 200, the paper's experimental setting).
func WithNonUnionThreshold(t float64) Option {
	return func(o *options) { o.cfg.NonUnionThreshold = t }
}

// WithUnionThreshold overrides the effective threshold applied once union
// indication has fired.
func WithUnionThreshold(t float64) Option {
	return func(o *options) { o.cfg.UnionThreshold = t }
}

// WithPoints overrides the per-indicator score values.
func WithPoints(p Points) Option {
	return func(o *options) { o.cfg.Points = p }
}

// DefaultPoints returns the calibrated default per-indicator score values,
// as a starting point for WithPoints adjustments.
func DefaultPoints() Points { return core.DefaultPoints() }

// WithUnionDisabled turns union indication off (ablation studies).
func WithUnionDisabled() Option {
	return func(o *options) { o.cfg.DisableUnion = true }
}

// WithUnweightedEntropy replaces the paper's entropy-operation weighting
// with plain byte weighting (ablation studies).
func WithUnweightedEntropy() Option {
	return func(o *options) { o.cfg.UnweightedEntropy = true }
}

// WithDisabledIndicators suppresses the listed indicators (ablation
// studies).
//
// Deprecated: compose the registry instead —
// WithIndicators(DefaultIndicators().Without(inds...)) is the same
// subtraction made explicit, and it composes with custom registries.
func WithDisabledIndicators(inds ...Indicator) Option {
	return func(o *options) { o.cfg.DisabledIndicators = append(o.cfg.DisabledIndicators, inds...) }
}

// WithIndicators sets the engine's indicator registry, replacing the
// default five-indicator paper set. Compose registries from
// DefaultIndicators with With/Without; the engine measures only the
// features the registered units declare a need for, so a registry without
// content-dependent units never reads file content at all.
func WithIndicators(reg *IndicatorRegistry) Option {
	return func(o *options) { o.cfg.Indicators = reg }
}

// WithPolicy sets the detection policy, replacing the paper's default
// union-plus-threshold policy. When set, the union-related knobs
// (WithUnionDisabled, Points.UnionBonus) no longer apply — the policy owns
// acceleration and thresholding.
func WithPolicy(p Policy) Option {
	return func(o *options) { o.cfg.Policy = p }
}

// WithFamilyScoring aggregates scores across process families: every
// process is scored against its root ancestor's scoreboard entry, so
// malware cannot dilute its reputation by spreading the attack over spawned
// workers. The detection then names (and suspends) the family root.
func WithFamilyScoring() Option {
	return func(o *options) { o.familyScoring = true }
}

// WithMeasureWorkers bounds how many file measurements (similarity digest,
// entropy, type sniff) may run concurrently off the event path. Zero — the
// default — keeps every measurement synchronous, bit-identical to the
// sequential engine; DefaultMeasureWorkers sizes the pool to the machine.
// Detection verdicts and scores are unchanged either way: only the point in
// the operation stream where a transformation's score lands may shift by a
// few operations for the affected process.
func WithMeasureWorkers(n int) Option {
	return func(o *options) { o.cfg.Workers = n }
}

// DefaultMeasureWorkers returns the measurement pool size matched to the
// machine, for use with WithMeasureWorkers.
func DefaultMeasureWorkers() int { return core.DefaultWorkers() }

// WithMeasureCache memoizes file measurements in c: content already measured
// anywhere sharing the cache is resolved by hash lookup instead of re-running
// the digest and entropy kernels. Detections, scores and traces are
// bit-identical with and without the cache. Create c with NewMeasureCache;
// the same cache may back many monitors and host sessions at once.
func WithMeasureCache(c *MeasureCache) Option {
	return func(o *options) { o.cfg.MeasureCache = c }
}

// WithSampledTier puts the engine on the cheap tier of the two-tier
// measurement ladder: file measurements read only the leading sampleBytes of
// content (zero means the default sample size) and score on sampled entropy,
// magic type and a prefix digest, until a process's first indicator firing
// escalates that process to full measurement. Benign bulk traffic pays a
// fraction of the read and kernel cost; suspicious processes converge to
// full-fidelity scoring.
func WithSampledTier(sampleBytes int) Option {
	return func(o *options) {
		o.cfg.Tier = core.TierSampled
		o.cfg.SampleBytes = sampleBytes
	}
}

// WithIncrementalEntropy maintains per-file byte histograms folded forward
// by each write, so re-measuring a mutated file reuses the maintained counts
// instead of rescanning the whole content. Entropy values — and therefore
// all verdicts — are bit-identical to the full rescan.
func WithIncrementalEntropy() Option {
	return func(o *options) { o.cfg.IncrementalEntropy = true }
}

// WithCheckpoint makes the monitor's session durable: its complete scoring
// state — scoreboard, file-state cache, detection latches, flight-recorder
// trace — checkpoints into dir, recoverable with WithRestore. The monitor
// drives its engine through the filesystem filter chain, not through
// Session.Submit, so its durability is checkpoint-granular: state persists
// on Close and on each Monitor.Checkpoint call (which requires no in-flight
// filesystem operations, the same quiescence Close has). The write-ahead
// log and the every interval engage for operations submitted through the
// session's op-ingest path (Session.Submit), where every ingested op is
// logged before it is applied and recovery replays the tail — host services
// feeding Ops get crash-exact recovery, per-op. Durability I/O failures
// never interrupt scoring; they surface through Session.DurabilityErr and
// explicit Checkpoint calls.
func WithCheckpoint(dir string, every int) Option {
	return func(o *options) {
		o.checkpointDir = dir
		o.checkpointEvery = every
	}
}

// WithRestore makes NewMonitor recover the session state persisted by a
// previous WithCheckpoint run: the last checkpoint is restored (after
// verifying it was sealed under the same indicator registry and scoring
// configuration — ErrSnapshotMismatch otherwise) and the write-ahead log
// tail is replayed, reproducing scoreboards, detections and flight traces
// bit for bit. Without WithRestore the monitor starts fresh, replacing any
// state a previous run left in the checkpoint directory.
func WithRestore() Option {
	return func(o *options) { o.restore = true }
}

// WithRecovery arms detect-then-recover: every mount of the monitored
// filesystem is wrapped with pre-image retention into vs (capture rides the
// existing pre-operation snapshot path, first touch per suspect group and
// file), and each detection triggers a rollback of the convicted family's
// retained pre-images — after enforcement has suspended the family, so the
// restored bytes are the final state. Groups that end the session without a
// verdict are exonerated and their pre-images released; families the user
// clears with Allow are exempted from capture entirely. Rollback outcomes
// surface through Monitor.Recoveries, SessionReport.Recoveries and each
// detection's AuditBundle. Detection verdicts and scores are bit-identical
// with and without recovery armed.
func WithRecovery(vs *VersionStore) Option {
	return func(o *options) { o.versions = vs }
}

// WithDetectionHandler registers a callback invoked once per detection,
// after the process family has been suspended.
func WithDetectionHandler(fn func(Detection)) Option {
	return func(o *options) { o.onDetection = fn }
}

// WithoutEnforcement disables process suspension: detections are recorded
// but flagged processes keep running (measurement-only mode, used by the
// false-positive threshold sweeps).
func WithoutEnforcement() Option {
	return func(o *options) { o.enforce = false }
}

// WithTelemetry attaches a metrics registry to the monitor: the engine,
// filter chain and filesystem all record into it. A nil registry (the
// default) disables collection; the instrumented paths then cost one nil
// check each.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(o *options) { o.cfg.Telemetry = reg }
}

// WithFlightRecorder attaches a detection flight recorder capturing the
// ordered indicator firings behind every scoreboard change, so each
// detection can be explained after the fact (see telemetry.FlightRecorder).
func WithFlightRecorder(fr *telemetry.FlightRecorder) Option {
	return func(o *options) { o.cfg.FlightRecorder = fr }
}

// WithSpanTracer attaches a causal span tracer: sampled operations record
// their journey through ingest, measurement, hook dispatch, indicator awards
// and the policy decision as timed spans, exportable as a Chrome trace-event
// file (see telemetry.SpanTracer). Create one with NewSpanTracer. A nil
// tracer (the default) disables tracing at the cost of one nil check per
// operation.
func WithSpanTracer(tr *SpanTracer) Option {
	return func(o *options) { o.cfg.SpanTracer = tr }
}

// WithAuditSink attaches a detection audit sink: every detection emits a
// self-contained AuditBundle — score composition per indicator, causal
// firing history, touched files, engine configuration and registry
// fingerprint, measurement and cache state — through it (see internal/audit;
// audit.NewJSONLSink writes bundles as JSON Lines).
func WithAuditSink(sink AuditSink) Option {
	return func(o *options) { o.cfg.AuditSink = sink }
}

// Monitor binds the CryptoDrop analysis engine, a filter chain and a
// process table to one filesystem. It is a single-session convenience over
// Host: the engine lives in a direct (unqueued) session, so scoring stays
// synchronous with the operation stream and enforcement can veto the very
// next operation after a detection.
type Monitor struct {
	fs       *vfs.FS
	procs    *proc.Table
	chain    *filter.Chain
	hst      *host.Host
	sess     *host.Session
	versions *VersionStore

	mu     sync.Mutex
	exempt map[int]bool

	onDetection func(Detection)
	enforce     bool
}

// MonitorSessionID is the session ID the Monitor's engine runs under in its
// internal Host.
const MonitorSessionID = "monitor"

// enforcement vetoes operations from suspended, non-exempt processes.
type enforcement struct{ m *Monitor }

var _ filter.Filter = (*enforcement)(nil)

// Name identifies the enforcement filter.
func (enforcement) Name() string { return "cryptodrop-enforce" }

// PreOp denies suspended processes.
func (f enforcement) PreOp(op *vfs.Op) error {
	if f.m.procs.Suspended(op.PID) && !f.m.isExempt(op.PID) {
		return fmt.Errorf("pid %d: %w", op.PID, ErrSuspended)
	}
	return nil
}

// PostOp is a no-op for the enforcement filter.
func (enforcement) PostOp(op *vfs.Op) {}

var _ filter.Filter = (*vfsadapter.Filter)(nil)

// NewMonitor attaches CryptoDrop to fsys, scoring processes registered in
// procs. The filesystem's interceptor is replaced with the monitor's filter
// chain; other filters (e.g. a simulated anti-virus) may be attached to
// Chain afterwards.
func NewMonitor(fsys *vfs.FS, procs *proc.Table, opts ...Option) (*Monitor, error) {
	o := options{cfg: core.DefaultConfig(DefaultProtectedRoot), enforce: true}
	for _, opt := range opts {
		opt(&o)
	}
	m := &Monitor{
		fs:          fsys,
		procs:       procs,
		chain:       &filter.Chain{},
		versions:    o.versions,
		exempt:      make(map[int]bool),
		onDetection: o.onDetection,
		enforce:     o.enforce,
	}
	o.cfg.OnDetection = m.handleDetection
	if o.familyScoring {
		o.cfg.FamilyOf = procs.RootOf
	}
	var recoverer host.Recoverer
	if o.versions != nil {
		// Retention groups must resolve exactly like the engine's scoring
		// groups, so exoneration and rollback release what capture retained.
		if o.familyScoring {
			o.versions.SetGroupOf(procs.RootOf)
		} else {
			o.versions.SetGroupOf(nil)
		}
		fsys.WrapMounts(func(_ string, b vfs.Backend) vfs.Backend {
			return versioned.Wrap(b, o.versions)
		})
		o.cfg.OnExonerate = o.versions.Release
		recoverer = recovery.NewCoordinator(fsys, o.versions)
	}
	m.hst = host.New(host.Config{
		Telemetry:       o.cfg.Telemetry,
		MeasureCache:    o.cfg.MeasureCache,
		CheckpointDir:   o.checkpointDir,
		CheckpointEvery: o.checkpointEvery,
		Restore:         o.restore,
	})
	sess, err := m.hst.Open(MonitorSessionID, host.SessionConfig{
		Engine:    o.cfg,
		Source:    vfsadapter.Source(fsys),
		Direct:    true,
		Recoverer: recoverer,
	})
	if err != nil {
		return nil, fmt.Errorf("open session: %w", err)
	}
	m.sess = sess
	if o.cfg.Telemetry != nil {
		m.chain.SetTelemetry(o.cfg.Telemetry)
		fsys.SetTelemetry(o.cfg.Telemetry)
	}
	if err := m.chain.Attach(altitudeEnforce, enforcement{m}); err != nil {
		return nil, fmt.Errorf("attach enforcement: %w", err)
	}
	if err := m.chain.Attach(altitudeEngine, vfsadapter.New(sess.Engine())); err != nil {
		return nil, fmt.Errorf("attach engine: %w", err)
	}
	fsys.SetInterceptor(m.chain)
	return m, nil
}

// handleDetection suspends the flagged family and forwards to the user's
// callback. The detection record itself lives in the engine, where it is
// part of the checkpointable session state.
func (m *Monitor) handleDetection(d Detection) {
	if m.enforce {
		m.procs.SuspendFamily(d.PID)
	}
	if m.onDetection != nil {
		m.onDetection(d)
	}
}

func (m *Monitor) isExempt(pid int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.exempt[pid]
}

// Allow records the user's decision to let a flagged process continue.
// Enforcement suspended the whole process family, so Allow resumes and
// exempts the whole family — otherwise children spawned before the
// detection would stay suspended forever.
func (m *Monitor) Allow(pid int) error {
	family, err := m.procs.ResumeFamily(pid)
	if err != nil {
		return err
	}
	m.mu.Lock()
	for _, p := range family {
		m.exempt[p] = true
	}
	m.mu.Unlock()
	if m.versions != nil {
		// The user cleared this program: stop retaining pre-images for it
		// and drop what capture already holds (the family list includes the
		// root, covering both per-PID and family scoring groups).
		for _, p := range family {
			m.versions.Exempt(p)
		}
	}
	return nil
}

// Recoveries returns the rollback outcomes of every detection-triggered
// recovery so far, in detection order (empty without WithRecovery).
func (m *Monitor) Recoveries() []RecoveryOutcome { return m.sess.Recoveries() }

// Chain exposes the filter chain so additional filters (anti-virus and the
// like) can be attached; CryptoDrop's behaviour is independent of their
// relative altitude.
func (m *Monitor) Chain() *filter.Chain { return m.chain }

// Detections returns all detections in occurrence order, including any
// restored from a checkpoint (WithRestore).
func (m *Monitor) Detections() []Detection { return m.sess.Engine().Detections() }

// Report returns the scoreboard snapshot for pid.
func (m *Monitor) Report(pid int) (ProcessReport, bool) { return m.sess.Engine().Report(pid) }

// Reports returns snapshots for every scored process, ordered by PID.
func (m *Monitor) Reports() []ProcessReport { return m.sess.Engine().Reports() }

// OpCount returns the number of protected-scope operations analysed.
func (m *Monitor) OpCount() int64 { return m.sess.Engine().OpIndex() }

// Session exposes the host session the monitor's engine runs in.
func (m *Monitor) Session() *Session { return m.sess }

// Checkpoint commits the session's complete scoring state to the
// WithCheckpoint directory and truncates its write-ahead log, blocking until
// the checkpoint is durably on disk or ctx expires. A no-op returning nil
// when the monitor was built without WithCheckpoint.
func (m *Monitor) Checkpoint(ctx context.Context) error { return m.sess.Checkpoint(ctx) }

// Shutdown detaches the monitor from the filesystem and shuts its host
// down — flushing and, under WithCheckpoint, durably checkpointing the
// session — returning the final session report. ctx bounds the wait.
func (m *Monitor) Shutdown(ctx context.Context) (SessionReport, error) {
	m.fs.SetInterceptor(nil)
	m.chain.Detach("cryptodrop-enforce")
	m.chain.Detach("cryptodrop")
	if m.versions != nil {
		// Unwrap the pre-image capture layer: the filesystem outlives the
		// monitor, and an unmonitored volume should not keep capturing.
		m.fs.WrapMounts(func(_ string, b vfs.Backend) vfs.Backend {
			if vb, ok := b.(*versioned.Backend); ok {
				return vb.Inner()
			}
			return b
		})
	}
	reports, err := m.hst.Shutdown(ctx)
	if err != nil {
		return SessionReport{}, err
	}
	if len(reports) == 0 {
		return SessionReport{}, fmt.Errorf("monitor: %w", ErrSessionClosed)
	}
	return reports[0], nil
}

// Close shuts the monitor down with no deadline.
//
// Deprecated: use Shutdown — the context-first surface bounds how long the
// final flush and checkpoint may take.
func (m *Monitor) Close() (SessionReport, error) {
	return m.Shutdown(context.Background())
}
