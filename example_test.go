package cryptodrop_test

import (
	"fmt"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/vfs"
)

// Example demonstrates the full pipeline: build a victim corpus, attach the
// monitor, release a ransomware specimen, and observe the suspension.
func Example() {
	fsys := vfs.New()
	manifest, err := corpus.Build(fsys, corpus.Spec{Seed: 42, Files: 400, Dirs: 40, SizeScale: 0.25})
	if err != nil {
		fmt.Println("corpus:", err)
		return
	}
	procs := proc.NewTable()
	mon, err := cryptodrop.NewMonitor(fsys, procs, cryptodrop.WithRoot(manifest.Root))
	if err != nil {
		fmt.Println("monitor:", err)
		return
	}

	var sample ransomware.Sample
	for _, s := range ransomware.Roster(42) {
		if s.Profile.Family == "Xorist" {
			sample = s
			break
		}
	}
	pid := procs.Spawn(sample.ID)
	res, err := sample.Run(fsys, pid, manifest.Root, func() bool { return procs.Suspended(pid) })
	if err != nil {
		fmt.Println("run:", err)
		return
	}

	fmt.Println("suspended:", res.Suspended)
	fmt.Println("detections:", len(mon.Detections()))
	fmt.Println("corpus mostly intact:", res.FilesAttacked < len(manifest.Entries)/10)
	// Output:
	// suspended: true
	// detections: 1
	// corpus mostly intact: true
}
