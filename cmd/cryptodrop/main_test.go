package main

import (
	"strings"
	"testing"
)

func small(args ...string) []string {
	return append(args, "-files", "250", "-dirs", "30", "-scale", "0.25")
}

func TestCLIList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIFamilyRun(t *testing.T) {
	if err := run(small("-family", "TeslaCrypt", "-v")); err != nil {
		t.Fatal(err)
	}
}

func TestCLIFamilyWithClass(t *testing.T) {
	if err := run(small("-family", "Filecoder", "-class", "C")); err != nil {
		t.Fatal(err)
	}
}

func TestCLIAppRun(t *testing.T) {
	if err := run(small("-app", "Microsoft Word")); err != nil {
		t.Fatal(err)
	}
}

func TestCLIUnknownFamily(t *testing.T) {
	err := run(small("-family", "NopeWare"))
	if err == nil || !strings.Contains(err.Error(), "no sample") {
		t.Fatalf("err = %v", err)
	}
}

func TestCLIUnknownApp(t *testing.T) {
	err := run(small("-app", "Totally Real App"))
	if err == nil || !strings.Contains(err.Error(), "unknown application") {
		t.Fatalf("err = %v", err)
	}
}

func TestCLINoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no-arg invocation accepted")
	}
}
