// Command cryptodrop demonstrates the monitor end to end: it builds the
// synthetic user-document corpus, attaches CryptoDrop, runs a chosen
// ransomware family (or benign application) against it, and reports what
// happened.
//
//	cryptodrop -list                      # show available families and apps
//	cryptodrop -family TeslaCrypt         # unleash a TeslaCrypt sample
//	cryptodrop -family CTB-Locker -class B
//	cryptodrop -app 7-zip                 # run a benign workload instead
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"cryptodrop"
	"cryptodrop/internal/benign"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/experiments"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cryptodrop:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cryptodrop", flag.ContinueOnError)
	var (
		family  = fs.String("family", "", "ransomware family to run (see -list)")
		class   = fs.String("class", "", "restrict to class A, B or C")
		app     = fs.String("app", "", "benign application workload to run instead")
		list    = fs.Bool("list", false, "list families and applications")
		seed    = fs.Int64("seed", 2016, "corpus and roster seed")
		files   = fs.Int("files", 1500, "corpus file count")
		dirs    = fs.Int("dirs", 150, "corpus directory count")
		scale   = fs.Float64("scale", 0.5, "corpus size scale")
		noStop  = fs.Bool("no-enforce", false, "record detections without suspending")
		rollbk  = fs.Bool("recover", false, "retain pre-images and roll back encrypted files on detection")
		verbose = fs.Bool("v", false, "print the full scoreboard")
		traceTo = fs.String("trace", "", "record the operation stream to this JSONL file")
		telAddr = fs.String("telemetry", "", "serve /metrics, /debug/vars and pprof on this address (e.g. :9090)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return printList()
	}
	spec := corpus.Spec{Seed: *seed, Files: *files, Dirs: *dirs, SizeScale: *scale}
	tel, err := setupTelemetry(*telAddr)
	if err != nil {
		return err
	}
	switch {
	case *app != "":
		return runApp(spec, *app, *verbose, tel)
	case *family != "":
		return runFamily(spec, *family, *class, *noStop, *rollbk, *verbose, *traceTo, tel)
	default:
		return errors.New("pass -family <name>, -app <name> or -list")
	}
}

// telemetrySetup carries the optional live-telemetry instruments.
type telemetrySetup struct {
	reg *telemetry.Registry
	fr  *telemetry.FlightRecorder
}

// setupTelemetry starts the metrics/pprof endpoint when addr is set and
// returns the registry and flight recorder every monitor should share.
func setupTelemetry(addr string) (telemetrySetup, error) {
	if addr == "" {
		return telemetrySetup{}, nil
	}
	t := telemetrySetup{
		reg: telemetry.NewRegistry(),
		fr:  telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity),
	}
	_, bound, err := telemetry.Serve(addr, t.reg, t.fr, nil)
	if err != nil {
		return telemetrySetup{}, fmt.Errorf("telemetry: %w", err)
	}
	fmt.Printf("telemetry: serving /metrics, /debug/vars, /debug/flight and /debug/pprof on http://%s\n", bound)
	return t, nil
}

// attach wires the instruments into a runner (no-op when telemetry is off).
func (t telemetrySetup) attach(r *experiments.Runner) {
	if t.reg != nil {
		r.SetTelemetry(t.reg, t.fr)
	}
}

func printList() error {
	fmt.Println("Ransomware families (Table I):")
	counts := map[string]map[ransomware.Class]int{}
	for _, s := range ransomware.Roster(1) {
		if counts[s.Profile.Family] == nil {
			counts[s.Profile.Family] = map[ransomware.Class]int{}
		}
		counts[s.Profile.Family][s.Profile.Class]++
	}
	var names []string
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, name := range names {
		c := counts[name]
		fmt.Fprintf(tw, "  %s\tA=%d B=%d C=%d\n", name, c[ransomware.ClassA], c[ransomware.ClassB], c[ransomware.ClassC])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Println("\nBenign applications (§V-F):")
	for _, w := range benign.All() {
		marker := " "
		if w.ExpectDetection {
			marker = "!"
		}
		fmt.Printf("  %s %-28s %s\n", marker, w.Name, w.Description)
	}
	return nil
}

func pickSample(family, class string, seed int64) (ransomware.Sample, error) {
	for _, s := range ransomware.Roster(seed) {
		if s.Profile.Family != family {
			continue
		}
		if class != "" && s.Profile.Class.String() != class {
			continue
		}
		return s, nil
	}
	return ransomware.Sample{}, fmt.Errorf("no sample of family %q class %q (see -list)", family, class)
}

func runFamily(spec corpus.Spec, family, class string, noEnforce, rollback, verbose bool, traceTo string, tel telemetrySetup) error {
	sample, err := pickSample(family, class, spec.Seed)
	if err != nil {
		return err
	}
	var opts []cryptodrop.Option
	if noEnforce {
		opts = append(opts, cryptodrop.WithoutEnforcement())
	}
	runner, err := experiments.NewRunner(spec, opts...)
	if err != nil {
		return err
	}
	if rollback {
		runner.EnableRecovery()
	}
	tel.attach(runner)
	if traceTo != "" {
		f, err := os.Create(traceTo)
		if err != nil {
			return err
		}
		defer f.Close()
		rec := trace.NewRecorder(f)
		runner.SetTraceRecorder(rec)
		defer func() {
			if err := rec.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "trace flush:", err)
			} else {
				fmt.Printf("trace: %d operations written to %s\n", rec.Records(), traceTo)
			}
		}()
	}
	fmt.Printf("Corpus: %d files in %d directories under %s\n",
		len(runner.Manifest().Entries), runner.Manifest().DirCount, runner.Manifest().Root)
	fmt.Printf("Releasing %s (Class %s, %v traversal, %v)...\n\n",
		sample.ID, sample.Profile.Class, sample.Profile.Traversal, sample.Profile.Cipher)
	out, err := runner.RunSample(sample)
	if err != nil {
		return err
	}
	if out.Detected {
		fmt.Printf("DETECTED and suspended: score %.1f (union indication: %v)\n", out.Score, out.Union)
	} else {
		fmt.Printf("NOT detected: score %.1f\n", out.Score)
	}
	lostLabel := "before suspension"
	if rollback {
		lostLabel = "after recovery"
	}
	fmt.Printf("Files lost %s: %d of %d (%.2f%%)\n",
		lostLabel, out.FilesLost, len(runner.Manifest().Entries),
		100*float64(out.FilesLost)/float64(len(runner.Manifest().Entries)))
	for _, rec := range out.Recoveries {
		fmt.Printf("Recovery: group %d — %d restored in place, %d recreated, %d failures, %d bytes\n",
			rec.Group, rec.FilesRestored, rec.FilesRecreated, rec.Failures, rec.BytesRestored)
	}
	fmt.Printf("Sample accounting: %d files attacked, %d ransom notes, %d op errors\n",
		out.Run.FilesAttacked, out.Run.NotesDropped, out.Run.OpErrors)
	if tel.fr != nil && out.Detected {
		t := tel.fr.Trace(out.Report.PID)
		fmt.Printf("flight recorder: %d indicator firings for pid %d (sum %.1f points) — /debug/flight has the trace\n",
			len(t.Events), t.Group, t.TotalPoints)
	}
	if verbose {
		printReport(out.Report)
	}
	return nil
}

func runApp(spec corpus.Spec, name string, verbose bool, tel telemetrySetup) error {
	w, ok := benign.ByName(name)
	if !ok {
		return fmt.Errorf("unknown application %q (see -list)", name)
	}
	runner, err := experiments.NewRunner(spec)
	if err != nil {
		return err
	}
	tel.attach(runner)
	fmt.Printf("Running %s: %s\n\n", w.Name, w.Description)
	out, err := runner.RunBenign(w)
	if err != nil {
		return err
	}
	verdict := "no false positive"
	if out.Detected {
		verdict = "FLAGGED"
	}
	fmt.Printf("Final score: %.1f — %s (union indication: %v)\n", out.Score, verdict, out.Union)
	if verbose {
		printReport(out.Report)
	}
	return nil
}

func printReport(rep cryptodrop.ProcessReport) {
	fmt.Println("\nScoreboard:")
	fmt.Printf("  read entropy mean:  %.3f\n", rep.ReadEntropyMean)
	fmt.Printf("  write entropy mean: %.3f\n", rep.WriteEntropyMean)
	fmt.Printf("  files transformed:  %d, deletes: %d\n", rep.FilesTransformed, rep.Deletes)
	for ind, pts := range rep.IndicatorPoints {
		fmt.Printf("  %-18v %.2f points\n", ind, pts)
	}
	if len(rep.ExtensionsTouched) > 0 {
		n := len(rep.ExtensionsTouched)
		if n > 10 {
			n = 10
		}
		fmt.Printf("  first extensions touched: %v\n", rep.ExtensionsTouched[:n])
	}
}
