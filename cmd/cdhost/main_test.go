package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"cryptodrop/internal/audit"
)

// TestSelftestObservabilityOutputs drives the full selftest — three staged
// corpora, one encrypted, fleet endpoint self-checked — with every
// observability surface armed, then validates the artifacts: the Chrome
// trace parses and holds spans, and the detection's audit bundle parses with
// per-indicator contributions summing to the detection score.
func TestSelftestObservabilityOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("full selftest cycle")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "spans.json")
	auditPath := filepath.Join(dir, "audit.jsonl")

	err := run([]string{
		"-selftest",
		"-interval", "50ms",
		"-slow-ms", "1",
		"-trace-out", tracePath,
		"-audit-out", auditPath,
	})
	if err != nil {
		t.Fatalf("selftest: %v", err)
	}

	// The Chrome trace is valid JSON with complete events from the pipeline.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			Cat   string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("trace-out is not valid Chrome trace JSON: %v", err)
	}
	cats := make(map[string]int)
	for _, ev := range chrome.TraceEvents {
		if ev.Phase == "X" {
			cats[ev.Cat]++
		}
	}
	if len(chrome.TraceEvents) == 0 || cats["dispatch"] == 0 {
		t.Fatalf("trace has %d events, dispatch spans %d — want both > 0 (cats: %v)",
			len(chrome.TraceEvents), cats["dispatch"], cats)
	}

	// The audit JSONL parses back and explains the detection: contributions
	// sum to the score, the causal trace is present, files were lost.
	f, err := os.Open(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bundles, err := audit.ReadBundles(f)
	if err != nil {
		t.Fatalf("audit-out did not parse: %v", err)
	}
	if len(bundles) == 0 {
		t.Fatal("no audit bundle for the selftest detection")
	}
	b := bundles[0]
	sum := 0.0
	for _, c := range b.Contributions {
		sum += c.Points
	}
	if math.Abs(sum-b.Score) > 1e-9 {
		t.Fatalf("contributions sum to %g, detection score is %g", sum, b.Score)
	}
	if b.SessionID == "" {
		t.Fatal("bundle carries no session ID")
	}
	if b.Registry.Fingerprint == "" {
		t.Fatal("bundle carries no registry fingerprint")
	}
	if len(b.Trace.Events) == 0 {
		t.Fatal("bundle carries no causal firing history")
	}
	if b.TimeToDetectionNs <= 0 {
		t.Fatalf("time-to-detection %d, want > 0 (timestamps enabled)", b.TimeToDetectionNs)
	}
}

func TestRunRequiresDirs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no -dir and no -selftest accepted")
	}
}

// TestRecoverSelftest runs the crash-and-recover selftest end to end: it
// must complete without error (the selftest itself errors on any divergence
// between the recovered and uninterrupted runs), both with its built-in
// defaults and with an explicit checkpoint directory + every-op cadence.
func TestRecoverSelftest(t *testing.T) {
	if err := run([]string{"-selftest-recover"}); err != nil {
		t.Fatalf("recover selftest: %v", err)
	}
	dir := t.TempDir()
	if err := run([]string{"-selftest-recover", "-checkpoint-dir", dir, "-checkpoint-every", "1"}); err != nil {
		t.Fatalf("recover selftest (every-op): %v", err)
	}
	if ckpts, err := filepath.Glob(filepath.Join(dir, "*.ckpt")); err != nil || len(ckpts) == 0 {
		t.Fatalf("no checkpoint file left in -checkpoint-dir (err=%v)", err)
	}
}

// TestRestoreRequiresCheckpointDir pins the flag contract.
func TestRestoreRequiresCheckpointDir(t *testing.T) {
	if err := run([]string{"-restore", "-dir", t.TempDir()}); err == nil {
		t.Fatal("-restore without -checkpoint-dir accepted")
	}
}
