// Command cdhost multiplexes several live directory roots through one
// multi-session detector host: each -dir gets its own detector session
// (independent engine, bounded ingest queue, overload policy) and the
// telemetry endpoint exposes per-session gauges, the fleet introspection
// snapshot (/debug/sessions), and — when tracing is on — the causal span
// buffer as a Chrome trace (/debug/trace).
//
//	cdhost -dir ~/Documents -dir ~/Pictures          # watch two roots
//	cdhost -selftest                                 # stage three corpora,
//	                                                 # encrypt one, show that
//	                                                 # only its session alerts
//	cdhost -selftest -trace-out /tmp/spans.json \
//	       -audit-out /tmp/audit.jsonl               # ...and keep the causal
//	                                                 # trace + audit bundle
//
// Sessions become durable with -checkpoint-dir: each session checkpoints its
// complete scoring state there and write-ahead-logs every ingested op batch,
// so a crashed host restarted with -restore resumes every session exactly —
// scoreboards, detection latches and traces included. -selftest-recover
// demonstrates the full cycle: it ingests two thirds of a deterministic
// attack durably, abandons the host mid-flight, recovers into a fresh host,
// finishes the attack, and verifies the outcome is bit-identical to an
// uninterrupted run.
package main

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"cryptodrop"
	"cryptodrop/internal/audit"
	"cryptodrop/internal/core"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/host"
	"cryptodrop/internal/livewatch"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/vfs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdhost:", err)
		os.Exit(1)
	}
}

// dirList collects repeated -dir flags.
type dirList []string

func (d *dirList) String() string     { return strings.Join(*d, ",") }
func (d *dirList) Set(v string) error { *d = append(*d, v); return nil }

func run(args []string) error {
	fs := flag.NewFlagSet("cdhost", flag.ContinueOnError)
	var dirs dirList
	fs.Var(&dirs, "dir", "directory to watch as one session (repeatable)")
	var (
		interval    = fs.Duration("interval", time.Second, "poll interval per session")
		queue       = fs.Int("queue", host.DefaultQueueDepth, "per-session ingest queue depth (batches)")
		selftest    = fs.Bool("selftest", false, "stage three corpora, encrypt one, show per-session verdicts")
		telAddr     = fs.String("telemetry", "", "serve /metrics, /debug/vars, /debug/sessions and pprof on this address (e.g. :9090)")
		traceOut    = fs.String("trace-out", "", "record causal pipeline spans and write a Chrome trace-event JSON file at shutdown")
		traceSample = fs.Int("trace-sample", 1, "record one in N operations when tracing (1 = every operation)")
		auditOut    = fs.String("audit-out", "", "append one JSONL detection audit bundle per detection to this file")
		slowMs      = fs.Int("slow-ms", 0, "log ingested ops slower than this many milliseconds to the introspection snapshot (0 = off)")
		ckptDir     = fs.String("checkpoint-dir", "", "make sessions durable: checkpoint files and write-ahead logs live here")
		ckptEvery   = fs.Int("checkpoint-every", 0, "auto-checkpoint a session every N ingested ops (0 = checkpoint only on shutdown)")
		restore     = fs.Bool("restore", false, "recover session state from -checkpoint-dir on open (checkpoint + WAL-tail replay)")
		recoverTest = fs.Bool("selftest-recover", false, "run the crash-and-recover selftest: durable ingest, simulated crash, bit-identical recovery")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *restore && *ckptDir == "" {
		return fmt.Errorf("-restore requires -checkpoint-dir")
	}
	cfg := watchConfig{
		interval:  *interval,
		queue:     *queue,
		reg:       telemetry.NewRegistry(),
		telAddr:   *telAddr,
		traceOut:  *traceOut,
		slowOp:    time.Duration(*slowMs) * time.Millisecond,
		ckptDir:   *ckptDir,
		ckptEvery: *ckptEvery,
		restore:   *restore,
	}
	if *traceOut != "" {
		cfg.spans = telemetry.NewSpanTracer(telemetry.DefaultSpanCapacity, *traceSample)
	}
	if *auditOut != "" {
		f, err := os.Create(*auditOut)
		if err != nil {
			return fmt.Errorf("audit-out: %w", err)
		}
		defer f.Close()
		sink := audit.NewJSONLSink(f)
		cfg.sink = sink
		defer func() {
			fmt.Printf("audit: %d bundle(s) written to %s\n", sink.Emitted(), *auditOut)
		}()
	}
	if *recoverTest {
		return runRecoverSelftest(cfg)
	}
	if *selftest {
		return runSelftest(cfg)
	}
	if len(dirs) == 0 {
		return fmt.Errorf("pass -dir <directory> (repeatable) or -selftest")
	}
	cfg.dirs = dirs
	return watch(cfg)
}

// watchConfig carries everything watch needs: the roots, the overload knobs,
// and the observability surfaces (shared across all sessions).
type watchConfig struct {
	dirs     []string
	interval time.Duration
	queue    int
	reg      *telemetry.Registry
	telAddr  string
	spans    *telemetry.SpanTracer
	traceOut string
	sink     audit.Sink
	slowOp   time.Duration
	// Durability knobs (-checkpoint-dir, -checkpoint-every, -restore).
	ckptDir   string
	ckptEvery int
	restore   bool
	// attack, if non-nil, runs in the background once watching has started;
	// exitOnAlert stops at the first alert (both selftest hooks).
	attack      func() error
	exitOnAlert bool
	// onAlert, if non-nil, runs on the first alert before shutdown, with the
	// live host and the bound telemetry address ("" when not serving) — the
	// selftest uses it to validate the introspection endpoint against itself.
	onAlert func(h *host.Host, addr string) error
}

// sessionID derives a unique, readable session ID for a root.
func sessionID(root string, taken map[string]bool) string {
	id := filepath.Base(filepath.Clean(root))
	for n := 2; taken[id]; n++ {
		id = fmt.Sprintf("%s-%d", filepath.Base(filepath.Clean(root)), n)
	}
	taken[id] = true
	return id
}

// roster couples one watched root to its session and feeder.
type roster struct {
	id      string
	root    string
	scanner *livewatch.Scanner
	feeder  *livewatch.Feeder
	sess    *host.Session
}

// watch multiplexes the configured roots through one host until interrupted
// (or, when cfg.exitOnAlert, until the first alert).
func watch(cfg watchConfig) error {
	h := host.New(host.Config{
		QueueDepth:      cfg.queue,
		Telemetry:       cfg.reg,
		SlowOpThreshold: cfg.slowOp,
		CheckpointDir:   cfg.ckptDir,
		CheckpointEvery: cfg.ckptEvery,
		Restore:         cfg.restore,
	})
	if cfg.traceOut != "" {
		defer dumpSpans(cfg.traceOut, cfg.spans)
	}

	bound := ""
	if cfg.telAddr != "" {
		ln, err := net.Listen("tcp", cfg.telAddr)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/", telemetry.Handler(cfg.reg, nil, cfg.spans))
		mux.Handle("/debug/sessions", h.IntrospectionHandler())
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		bound = ln.Addr().String()
		fmt.Printf("telemetry: serving /metrics and /debug/sessions on http://%s\n", bound)
	}

	type alert struct {
		id  string
		det core.Detection
	}
	alerts := make(chan alert, len(cfg.dirs))

	taken := make(map[string]bool)
	rosters := make([]*roster, 0, len(cfg.dirs))
	for _, dir := range cfg.dirs {
		id := sessionID(dir, taken)
		ecfg := core.DefaultConfig("")
		ecfg.SpanTracer = cfg.spans
		if cfg.sink != nil {
			ecfg.AuditSink = cfg.sink
			// Audit bundles reconstruct the causal firing history from the
			// flight recorder; one per session, with wall-clock stamps so the
			// bundle can report time-to-detection.
			fr := telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
			fr.EnableTimestamps()
			ecfg.FlightRecorder = fr
		}
		ecfg.OnDetection = func(d core.Detection) {
			select {
			case alerts <- alert{id: id, det: d}:
			default:
			}
		}
		sess, err := h.Open(id, livewatch.FeederSessionConfig(&ecfg))
		if err != nil {
			return fmt.Errorf("open session %q: %w", id, err)
		}
		rosters = append(rosters, &roster{
			id: id, root: dir,
			scanner: livewatch.NewScanner(dir),
			feeder:  livewatch.NewFeeder(sess),
			sess:    sess,
		})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	fmt.Printf("baselining %d roots...\n", len(rosters))
	for _, r := range rosters {
		if _, err := r.scanner.Scan(); err != nil {
			return fmt.Errorf("session %q: baseline: %w", r.id, err)
		}
		if err := r.feeder.PrimeTree(ctx, r.root); err != nil {
			return fmt.Errorf("session %q: prime: %w", r.id, err)
		}
	}

	// One poller goroutine per session: scan, translate, submit. A slow or
	// overloaded session blocks only its own poller (backpressure), never
	// its siblings.
	var wg sync.WaitGroup
	for _, r := range rosters {
		wg.Add(1)
		go func(r *roster) {
			defer wg.Done()
			ticker := time.NewTicker(cfg.interval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					events, err := r.scanner.Scan()
					if err != nil {
						continue
					}
					if err := r.feeder.Apply(ctx, events); err != nil {
						return // session closed or context cancelled
					}
				}
			}
		}(r)
	}
	defer wg.Wait()
	fmt.Printf("watching %d sessions (poll every %v). Ctrl-C to stop.\n", len(rosters), cfg.interval)

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	defer signal.Stop(interrupt)

	attackDone := make(chan error, 1)
	if cfg.attack != nil {
		go func() { attackDone <- cfg.attack() }()
	}

	status := time.NewTicker(5 * time.Second)
	defer status.Stop()
	for {
		select {
		case a := <-alerts:
			fmt.Printf("\n!! ALERT in session %q: score %.1f (union=%v)\n", a.id, a.det.Score, a.det.Union)
			if cfg.exitOnAlert {
				if cfg.onAlert != nil {
					if err := cfg.onAlert(h, bound); err != nil {
						cancel()
						return fmt.Errorf("selftest introspection: %w", err)
					}
				}
				cancel()
				return shutdown(h, a.id)
			}
		case err := <-attackDone:
			if err != nil {
				cancel()
				return fmt.Errorf("selftest attack: %w", err)
			}
			attackDone = nil // keep waiting for the alert
		case <-status.C:
			fmt.Print("  scores:")
			for _, r := range rosters {
				score := 0.0
				for _, rep := range r.sess.Reports() {
					score += rep.Score
				}
				fmt.Printf(" %s=%.1f", r.id, score)
			}
			fmt.Println()
		case <-interrupt:
			cancel()
			return shutdown(h, "")
		}
	}
}

// dumpSpans writes the recorded causal spans as a Chrome trace-event file.
func dumpSpans(path string, spans *telemetry.SpanTracer) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdhost: trace-out:", err)
		return
	}
	defer f.Close()
	if err := spans.WriteChromeTrace(f); err != nil {
		fmt.Fprintln(os.Stderr, "cdhost: trace-out:", err)
		return
	}
	fmt.Printf("trace: %d span(s) written to %s (%d dropped)\n", spans.Recorded(), path, spans.Dropped())
}

// shutdown drains every session and prints the final per-session summary,
// flagging alertedID's verdict if set.
func shutdown(h *host.Host, alertedID string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reports, err := h.Shutdown(ctx)
	if err != nil {
		return err
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].ID < reports[j].ID })
	fmt.Println("\nfinal session reports:")
	for _, r := range reports {
		verdict := "clean"
		if len(r.Detections) > 0 {
			verdict = fmt.Sprintf("DETECTED (%d)", len(r.Detections))
		}
		fmt.Printf("  %-12s %-14s %6d events ingested, degraded=%v\n",
			r.ID, verdict, r.Ingested, r.Degraded)
	}
	if alertedID != "" {
		for _, r := range reports {
			if r.ID != alertedID && len(r.Detections) > 0 {
				return fmt.Errorf("session %q alerted unexpectedly", r.ID)
			}
		}
	}
	return nil
}

// runSelftest stages three corpora in temp directories, watches each as its
// own session, encrypts exactly one and verifies only that session alerts —
// and, on the way out, that the introspection endpoint sees the whole fleet.
func runSelftest(cfg watchConfig) error {
	var dirs []string
	for i := 0; i < 3; i++ {
		stage, err := os.MkdirTemp("", fmt.Sprintf("cdhost-selftest-%d-", i))
		if err != nil {
			return err
		}
		defer os.RemoveAll(stage)
		mem := vfs.New()
		m, err := corpus.Build(mem, corpus.Spec{
			Seed: int64(101 + i), Files: 120, Dirs: 12, SizeScale: 0.2, ReadOnlyFraction: -1,
		})
		if err != nil {
			return err
		}
		for _, e := range m.Entries {
			rel := strings.TrimPrefix(e.Path, m.Root+"/")
			dst := filepath.Join(stage, filepath.FromSlash(rel))
			if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
				return err
			}
			content, err := mem.ReadFileRaw(e.Path)
			if err != nil {
				return err
			}
			if err := os.WriteFile(dst, content, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("staged %d files under %s\n", len(m.Entries), stage)
		dirs = append(dirs, stage)
	}

	victim := dirs[1]
	cfg.dirs = dirs
	cfg.exitOnAlert = true
	cfg.attack = func() error {
		time.Sleep(2 * cfg.interval) // let the pollers settle
		fmt.Printf("  (selftest: encrypting %s...)\n", victim)
		return filepath.WalkDir(victim, func(p string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			info, err := d.Info()
			if err != nil {
				return err
			}
			enc := make([]byte, info.Size())
			if _, err := rand.Read(enc); err != nil {
				return err
			}
			return os.WriteFile(p, enc, 0o644)
		})
	}
	if cfg.telAddr == "" {
		// The selftest validates the fleet endpoint against itself, so it
		// always serves — on an ephemeral loopback port unless told where.
		cfg.telAddr = "127.0.0.1:0"
	}
	cfg.onAlert = func(h *host.Host, addr string) error {
		return checkIntrospection(h, addr, len(dirs))
	}
	return watch(cfg)
}

// recoverCipher is a deterministic high-entropy keystream for file id, so
// every selftest run replays byte-identical "ciphertext".
func recoverCipher(id uint64, n int) []byte {
	s := id*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909
	out := make([]byte, n)
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = byte(s >> 32)
	}
	return out
}

// recoverWorkload builds a deterministic n-file in-place encryption attack
// as host ops: each op is one full rewrite cycle (cryptodrop.OpWrite)
// staging the file's low-entropy pre-version for the destructive-open
// snapshot and its ciphertext for the close-time measurement, which is
// exactly the stream a feeder would produce.
func recoverWorkload(pid, n int) []host.Op {
	const size = 2048
	ops := make([]host.Op, 0, n)
	for id := uint64(1); id <= uint64(n); id++ {
		path := fmt.Sprintf("/docs/doc%03d.txt", id)
		line := fmt.Sprintf("document %d: plain readable prose with very little entropy.\n", id)
		plain := []byte(strings.Repeat(line, size/len(line)+1))[:size]
		ops = append(ops, cryptodrop.OpWrite(pid, path, id, plain, recoverCipher(id, size)))
	}
	return ops
}

// submitAll feeds ops to a session in fixed-size batches.
func submitAll(sess *host.Session, ops []host.Op, batch int) error {
	ctx := context.Background()
	for len(ops) > 0 {
		n := min(batch, len(ops))
		if err := sess.Submit(ctx, ops[:n]...); err != nil {
			return err
		}
		ops = ops[n:]
	}
	return nil
}

// runRecoverSelftest exercises the durable-session cycle end to end with a
// deterministic synthetic attack (no real filesystem involved): durable
// ingest of two thirds of an in-place encryption run, a simulated crash —
// the host is simply abandoned mid-flight, no shutdown of any kind — then
// recovery into a fresh host from the checkpoint + WAL tail, the rest of
// the attack, and a bit-identical comparison against an uninterrupted
// reference run.
func runRecoverSelftest(cfg watchConfig) error {
	const pid, files, batch = 4242, 60, 5
	every := cfg.ckptEvery
	if every == 0 {
		every = 16
	}
	dir := cfg.ckptDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "cdhost-recover-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	ops := recoverWorkload(pid, files)
	engCfg := func() core.Config { return core.DefaultConfig("/docs") }

	// Reference: the same attack through a non-durable host, no crash.
	href := host.New(host.Config{})
	sref, err := href.Open("victim", host.SessionConfig{Engine: engCfg()})
	if err != nil {
		return err
	}
	if err := submitAll(sref, ops, batch); err != nil {
		return err
	}
	want, err := href.CloseSession(context.Background(), "victim")
	if err != nil {
		return err
	}
	if len(want.Detections) == 0 {
		return fmt.Errorf("selftest workload fired no detections; recovery would prove nothing")
	}
	fmt.Printf("reference run: %d ops, %d detection(s), final score %.1f\n",
		want.Ingested, len(want.Detections), want.Detections[0].Score)

	// Phase 1: durable ingest of the first 2/3, then crash.
	cut := (files * 2 / 3 / batch) * batch
	h1 := host.New(host.Config{CheckpointDir: dir, CheckpointEvery: every})
	s1, err := h1.Open("victim", host.SessionConfig{Engine: engCfg()})
	if err != nil {
		return err
	}
	if err := submitAll(s1, ops[:cut], batch); err != nil {
		return err
	}
	if err := s1.Flush(context.Background()); err != nil {
		return err
	}
	if err := s1.DurabilityErr(); err != nil {
		return fmt.Errorf("phase 1 durability: %w", err)
	}
	fmt.Printf("phase 1: ingested %d/%d ops durably (checkpoint every %d), now crashing the host\n",
		cut, len(ops), every)

	// Phase 2: recover into a fresh host and finish the attack.
	h2 := host.New(host.Config{CheckpointDir: dir, CheckpointEvery: every, Restore: true})
	s2, err := h2.Open("victim", host.SessionConfig{Engine: engCfg()})
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	if got := s2.Engine().OpIndex(); got != int64(cut) {
		return fmt.Errorf("restored engine resumed at op %d, want %d", got, cut)
	}
	fmt.Printf("phase 2: restored session at op %d, finishing the attack\n", cut)
	if err := submitAll(s2, ops[cut:], batch); err != nil {
		return err
	}
	got, err := h2.CloseSession(context.Background(), "victim")
	if err != nil {
		return err
	}
	if err := s2.DurabilityErr(); err != nil {
		return fmt.Errorf("phase 2 durability: %w", err)
	}

	switch {
	case !reflect.DeepEqual(got.Reports, want.Reports):
		return fmt.Errorf("recovered scoreboard diverged from the uninterrupted run")
	case !reflect.DeepEqual(got.Detections, want.Detections):
		return fmt.Errorf("recovered detections diverged from the uninterrupted run")
	case got.Ingested != want.Ingested:
		return fmt.Errorf("recovered run ingested %d ops, reference %d", got.Ingested, want.Ingested)
	}
	fmt.Printf("recovered run is bit-identical to the uninterrupted run: %d ops, %d detection(s), score %.1f\n",
		got.Ingested, len(got.Detections), got.Detections[0].Score)
	return nil
}

// checkIntrospection fetches /debug/sessions from the live endpoint and
// verifies the snapshot lists every session with its ingest accounting.
func checkIntrospection(h *host.Host, addr string, want int) error {
	resp, err := http.Get("http://" + addr + "/debug/sessions")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /debug/sessions: status %d", resp.StatusCode)
	}
	var snap host.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("parse /debug/sessions: %w", err)
	}
	if snap.SessionsOpen != want || len(snap.Sessions) != want {
		return fmt.Errorf("snapshot lists %d sessions (rows: %d), want %d",
			snap.SessionsOpen, len(snap.Sessions), want)
	}
	for _, s := range snap.Sessions {
		if s.Ingested == 0 {
			return fmt.Errorf("session %q shows no ingested ops", s.ID)
		}
	}
	fmt.Printf("  (selftest: /debug/sessions lists all %d sessions)\n", want)
	return nil
}
