//go:build !linux

package main

import (
	"errors"

	"cryptodrop/internal/livewatch"
)

// inotifySource is unavailable off Linux.
type inotifySource struct{ livewatch.Source }

func (s inotifySource) close() {}

// newInotifySource reports that inotify is Linux-only.
func newInotifySource(dir string) (inotifySource, error) {
	return inotifySource{}, errors.New("cdlive: -inotify is only available on Linux")
}
