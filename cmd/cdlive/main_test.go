package main

import (
	"strings"
	"testing"
	"time"

	"cryptodrop/internal/telemetry"
)

func TestCDLiveSelftest(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second watcher loop")
	}
	done := make(chan error, 1)
	go func() { done <- runSelftest(150*time.Millisecond, false, telemetry.NewRegistry()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("selftest did not alert within 60s")
	}
}

func TestCDLiveRequiresDir(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -dir accepted")
	}
}

func TestCDLiveBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestCDLiveSelftestInotify(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second watcher loop")
	}
	done := make(chan error, 1)
	go func() { done <- runSelftest(150*time.Millisecond, true, nil) }()
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "only available on Linux") {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("inotify selftest did not alert within 60s")
	}
}
