// Command cdlive runs the fsnotify-style live monitor against a real
// directory on disk — the deployable (degraded) variant of CryptoDrop that
// works without kernel hooks (see internal/livewatch):
//
//	cdlive -dir ~/Documents                # watch until interrupted
//	cdlive -selftest                       # stage a corpus in a temp dir,
//	                                       # encrypt it, and show the alert
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/livewatch"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/vfs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdlive:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdlive", flag.ContinueOnError)
	var (
		dir        = fs.String("dir", "", "directory to watch")
		interval   = fs.Duration("interval", time.Second, "poll/drain interval")
		selftest   = fs.Bool("selftest", false, "stage a corpus in a temp dir and simulate an attack")
		useInotify = fs.Bool("inotify", false, "use the Linux inotify source instead of polling (Linux only)")
		telAddr    = fs.String("telemetry", "", "serve /metrics, /debug/vars and pprof on this address (e.g. :9090)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var reg *telemetry.Registry
	if *telAddr != "" {
		reg = telemetry.NewRegistry()
		_, bound, err := telemetry.Serve(*telAddr, reg, nil, nil)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		fmt.Printf("telemetry: serving /metrics, /debug/vars and /debug/pprof on http://%s\n", bound)
	}
	if *selftest {
		return runSelftest(*interval, *useInotify, reg)
	}
	if *dir == "" {
		return fmt.Errorf("pass -dir <directory> or -selftest")
	}
	return watch(*dir, *interval, *useInotify, reg, nil)
}

// watch runs the watcher until interrupted (or until attack, if non-nil,
// finishes and the alert fires).
func watch(dir string, interval time.Duration, useInotify bool, reg *telemetry.Registry, attack func() error) error {
	alerts := make(chan livewatch.Alert, 1)
	cfg := livewatch.AnalyzerConfig{
		Telemetry: reg,
		OnAlert: func(a livewatch.Alert) {
			select {
			case alerts <- a:
			default:
			}
		},
	}
	var w *livewatch.Watcher
	if useInotify {
		src, err := newInotifySource(dir)
		if err != nil {
			return err
		}
		defer src.close()
		w = livewatch.NewWatcherWithSource(src, interval, cfg)
	} else {
		w = livewatch.NewWatcher(dir, interval, cfg)
	}
	fmt.Printf("baselining %s...\n", dir)
	if err := w.Start(); err != nil {
		return err
	}
	defer w.Stop()
	fmt.Printf("watching (poll every %v). Ctrl-C to stop.\n", interval)

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	defer signal.Stop(interrupt)

	attackDone := make(chan error, 1)
	if attack != nil {
		go func() { attackDone <- attack() }()
	}

	ticker := time.NewTicker(5 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case a := <-alerts:
			fmt.Printf("\n!! ALERT: suspicious bulk transformation (score %.1f, union=%v,\n"+
				"          %d files transformed, %d deleted)\n",
				a.Score, a.Union, a.FilesTransformed, a.Deletions)
			// The analyzer shares the engine's scoreboard: show which
			// indicators drove the alert, as cdreplay does for traces.
			rep := w.Analyzer().Report()
			for _, ind := range rep.IndicatorsSeen {
				fmt.Printf("   %-18v %.2f\n", ind, rep.IndicatorPoints[ind])
			}
			return nil
		case err := <-attackDone:
			if err != nil {
				return fmt.Errorf("selftest attack: %w", err)
			}
			attackDone = nil // keep waiting for the alert
		case <-ticker.C:
			fmt.Printf("  score %.1f after %d scans\n", w.Analyzer().Score(), w.Scans())
		case <-interrupt:
			fmt.Printf("\nstopped: final score %.1f after %d scans\n", w.Analyzer().Score(), w.Scans())
			return nil
		}
	}
}

// runSelftest stages a real corpus in a temp directory and encrypts it
// while the watcher runs.
func runSelftest(interval time.Duration, useInotify bool, reg *telemetry.Registry) error {
	stage, err := os.MkdirTemp("", "cryptodrop-selftest-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stage)

	mem := vfs.New()
	m, err := corpus.Build(mem, corpus.Spec{Seed: 99, Files: 150, Dirs: 15, SizeScale: 0.2, ReadOnlyFraction: -1})
	if err != nil {
		return err
	}
	for _, e := range m.Entries {
		rel := strings.TrimPrefix(e.Path, m.Root+"/")
		dst := filepath.Join(stage, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		content, err := mem.ReadFileRaw(e.Path)
		if err != nil {
			return err
		}
		if err := os.WriteFile(dst, content, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("staged %d files under %s\n", len(m.Entries), stage)

	attack := func() error {
		time.Sleep(2 * interval) // let the watcher settle
		fmt.Println("  (selftest: encrypting staged files...)")
		return filepath.WalkDir(stage, func(p string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			info, err := d.Info()
			if err != nil {
				return err
			}
			enc := make([]byte, info.Size())
			if _, err := rand.Read(enc); err != nil {
				return err
			}
			return os.WriteFile(p, enc, 0o644)
		})
	}
	return watch(stage, interval, useInotify, reg, attack)
}
