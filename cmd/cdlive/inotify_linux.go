//go:build linux

package main

import "cryptodrop/internal/livewatch"

// inotifySource wraps the Linux inotify scanner with a uniform close hook.
type inotifySource struct{ *livewatch.InotifyScanner }

func (s inotifySource) close() { _ = s.InotifyScanner.Close() }

// newInotifySource opens the Linux inotify event source.
func newInotifySource(dir string) (inotifySource, error) {
	sc, err := livewatch.NewInotifyScanner(dir)
	if err != nil {
		return inotifySource{}, err
	}
	return inotifySource{sc}, nil
}
