package main

// The wire-ingest load generator: cdbench's detection-service benchmark.
//
//	cdbench -serve :8420                     run the service half and block
//	cdbench -exp wire                        self-contained A/B on loopback
//	cdbench -exp wire -remote http://h:8420  drive a running cdserver
//	cdbench -exp wire -wire-sessions 256 -json BENCH_PR9.json
//
// The experiment interleaves two trials per iteration — the identical
// workload submitted in-process through host sessions, then over the wire
// through the streaming client — and reports median sessions/sec, ops/sec
// and p50/p99 per-batch ingest latency for each, plus the wire overhead
// ratio. Interleaving keeps thermal and cache drift from biasing one side.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"time"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/host"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/server"
	"cryptodrop/internal/server/client"
	srvconfig "cryptodrop/internal/server/config"
)

// benchToken is the bearer token the self-contained benchmark and -serve
// mode agree on; a remote cdserver needs a tenant with this token (override
// with -wire-token).
const benchToken = "bench"

// wireWorkload builds the per-session op stream: n low-entropy rewrite
// cycles of size-byte documents. Read-only, shared by every session.
func wireWorkload(n, size int) []cryptodrop.Op {
	ops := make([]cryptodrop.Op, 0, n)
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		line := fmt.Sprintf("benchmark doc %d: steady benign prose, nothing to see.\n", i)
		before := make([]byte, 0, size+len(line))
		for len(before) < size {
			before = append(before, line...)
		}
		before = before[:size]
		after := append(append([]byte(nil), before...), []byte("edited\n")...)
		ops = append(ops, cryptodrop.OpWrite(4000+i%16, fmt.Sprintf("/docs/b%05d.txt", i), id, before, after))
	}
	return ops
}

// benchServerConfig writes a one-tenant config file for the embedded server.
func benchServerConfig() (string, error) {
	f, err := os.CreateTemp("", "cdbench-tenants-*.json")
	if err != nil {
		return "", err
	}
	cfg := fmt.Sprintf(`{"tenants": [{"name": "bench", "token": %q}]}`, benchToken)
	if _, err := f.WriteString(cfg); err != nil {
		f.Close()
		return "", err
	}
	return f.Name(), f.Close()
}

// startBenchServer runs an in-process ingest service on addr (":0" for an
// ephemeral port) and returns its base URL and a shutdown func.
func startBenchServer(addr string) (string, func(), error) {
	cfgPath, err := benchServerConfig()
	if err != nil {
		return "", nil, err
	}
	loader, err := srvconfig.Load(cfgPath)
	if err != nil {
		os.Remove(cfgPath)
		return "", nil, err
	}
	h := host.New(host.Config{})
	srv := server.New(h, loader, server.Options{})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		os.Remove(cfgPath)
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	stop := func() {
		_ = httpSrv.Close()
		_, _ = srv.Drain(context.Background())
		os.Remove(cfgPath)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// runServe is cdbench -serve: the service half of a two-machine benchmark.
func runServe(addr string) error {
	url, stop, err := startBenchServer(addr)
	if err != nil {
		return err
	}
	defer stop()
	fmt.Printf("cdbench: ingest service at %s (tenant %q, token %q)\n", url, "bench", benchToken)
	fmt.Println("cdbench: drive it with: cdbench -exp wire -remote", url)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("cdbench: draining")
	return nil
}

// trialStats are one trial's results.
type trialStats struct {
	SessionsPerSec float64 `json:"sessionsPerSec"`
	OpsPerSec      float64 `json:"opsPerSec"`
	P50Ms          float64 `json:"p50Ms"`
	P99Ms          float64 `json:"p99Ms"`
}

// percentile returns the q-quantile of sorted durations in milliseconds.
func percentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// collectStats folds per-batch latencies and wall time into trialStats.
func collectStats(lat []time.Duration, wall time.Duration, sessions, totalOps int) trialStats {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return trialStats{
		SessionsPerSec: float64(sessions) / wall.Seconds(),
		OpsPerSec:      float64(totalOps) / wall.Seconds(),
		P50Ms:          percentile(lat, 0.50),
		P99Ms:          percentile(lat, 0.99),
	}
}

// runInprocTrial submits the workload through direct host sessions: the
// same engines, queues and batching, no network.
func runInprocTrial(sessions, batch int, ops []cryptodrop.Op) (trialStats, error) {
	h := host.New(host.Config{})
	ctx := context.Background()
	lat := make([][]time.Duration, sessions)
	errs := make([]error, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess, err := h.Open(fmt.Sprintf("bench-%04d", s), host.SessionConfig{
				Engine: cryptodrop.DefaultEngineConfig("/docs"),
			})
			if err != nil {
				errs[s] = err
				return
			}
			for i := 0; i < len(ops); i += batch {
				b := ops[i:min(i+batch, len(ops))]
				t0 := time.Now()
				if err := sess.Submit(ctx, b...); err != nil {
					errs[s] = err
					return
				}
				lat[s] = append(lat[s], time.Since(t0))
			}
			errs[s] = sess.Flush(ctx)
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)
	if _, err := h.Shutdown(ctx); err != nil {
		return trialStats{}, err
	}
	var all []time.Duration
	for s := range lat {
		if errs[s] != nil {
			return trialStats{}, fmt.Errorf("session %d: %w", s, errs[s])
		}
		all = append(all, lat[s]...)
	}
	return collectStats(all, wall, sessions, sessions*len(ops)), nil
}

// runWireTrial submits the workload through concurrent wire streams against
// base; iter namespaces the session IDs so a reused remote server scores
// fresh sessions each iteration.
func runWireTrial(base string, sessions, batch, iter int, ops []cryptodrop.Op) (trialStats, error) {
	c := client.New(base, benchToken)
	ctx := context.Background()
	lat := make([][]time.Duration, sessions)
	errs := make([]error, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			st, err := c.Open(ctx, fmt.Sprintf("bench-i%02d-%04d", iter, s))
			if err != nil {
				errs[s] = err
				return
			}
			for i := 0; i < len(ops); i += batch {
				b := ops[i:min(i+batch, len(ops))]
				t0 := time.Now()
				if err := st.Submit(ctx, b...); err != nil {
					errs[s] = err
					return
				}
				lat[s] = append(lat[s], time.Since(t0))
			}
			_, errs[s] = st.Flush(ctx)
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)
	var all []time.Duration
	for s := range lat {
		if errs[s] != nil {
			return trialStats{}, fmt.Errorf("stream %d: %w", s, errs[s])
		}
		all = append(all, lat[s]...)
	}
	return collectStats(all, wall, sessions, sessions*len(ops)), nil
}

// median of a float slice.
func median(v []float64) float64 {
	sort.Float64s(v)
	return v[len(v)/2]
}

// medianStats folds per-iteration stats into their medians.
func medianStats(trials []trialStats) trialStats {
	var sps, ops, p50, p99 []float64
	for _, t := range trials {
		sps = append(sps, t.SessionsPerSec)
		ops = append(ops, t.OpsPerSec)
		p50 = append(p50, t.P50Ms)
		p99 = append(p99, t.P99Ms)
	}
	return trialStats{
		SessionsPerSec: median(sps),
		OpsPerSec:      median(ops),
		P50Ms:          median(p50),
		P99Ms:          median(p99),
	}
}

// expWire is the wire-ingest benchmark experiment.
func expWire(cfg config, _ corpus.Spec, _ []ransomware.Sample) error {
	sessions, opsN, batch, size := cfg.wireSessions, cfg.wireOps, cfg.wireBatch, cfg.wireBytes
	iters := cfg.wireIters
	if cfg.quick {
		sessions, opsN, iters = min(sessions, 32), min(opsN, 20), min(iters, 2)
	}
	base := cfg.remote
	if base == "" {
		url, stop, err := startBenchServer("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer stop()
		base = url
	}
	ops := wireWorkload(opsN, size)
	fmt.Printf("wire ingest A/B: %d sessions × %d ops (batch %d, %d B content), %d interleaved iterations\n",
		sessions, opsN, batch, size, iters)
	fmt.Printf("service: %s\n\n", base)

	var inproc, wired []trialStats
	for it := 0; it < iters; it++ {
		in, err := runInprocTrial(sessions, batch, ops)
		if err != nil {
			return fmt.Errorf("in-process trial %d: %w", it, err)
		}
		wr, err := runWireTrial(base, sessions, batch, it, ops)
		if err != nil {
			return fmt.Errorf("wire trial %d: %w", it, err)
		}
		inproc, wired = append(inproc, in), append(wired, wr)
		fmt.Printf("iter %d: inproc %8.1f ops/s (p50 %.3fms p99 %.3fms) | wire %8.1f ops/s (p50 %.3fms p99 %.3fms)\n",
			it, in.OpsPerSec, in.P50Ms, in.P99Ms, wr.OpsPerSec, wr.P50Ms, wr.P99Ms)
	}
	mi, mw := medianStats(inproc), medianStats(wired)
	fmt.Printf("\nmedian in-process: %8.1f sessions/s %10.1f ops/s  p50 %.3f ms  p99 %.3f ms\n",
		mi.SessionsPerSec, mi.OpsPerSec, mi.P50Ms, mi.P99Ms)
	fmt.Printf("median over-wire:  %8.1f sessions/s %10.1f ops/s  p50 %.3f ms  p99 %.3f ms\n",
		mw.SessionsPerSec, mw.OpsPerSec, mw.P50Ms, mw.P99Ms)
	// The comparable number is throughput: an in-process Submit is a queue
	// enqueue (its p50 is microseconds by design), while a wire Submit pays
	// framing, HTTP and the admission ladder — so the A/B ratio is ops/sec,
	// with the latency percentiles reported per transport on their own terms.
	slowdown := 0.0
	if mw.OpsPerSec > 0 {
		slowdown = mi.OpsPerSec / mw.OpsPerSec
	}
	fmt.Printf("wire throughput cost: %.2fx (in-process ops/s ÷ over-wire ops/s)\n", slowdown)

	if cfg.jsonOut != "" {
		out := map[string]any{
			"bench":         "wire-ingest",
			"goVersion":     runtime.Version(),
			"goos":          runtime.GOOS,
			"goarch":        runtime.GOARCH,
			"cpus":          runtime.NumCPU(),
			"sessions":      sessions,
			"opsPerSession": opsN,
			"batch":         batch,
			"contentBytes":  size,
			"iterations":    iters,
			"remote":        cfg.remote != "",
			"inprocess":     mi,
			"wire":          mw,
			"wireSlowdownX": slowdown,
		}
		f, err := os.Create(cfg.jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", cfg.jsonOut)
	}
	return nil
}
