// Command cdbench regenerates every table and figure of the paper's
// evaluation (§V) against the synthetic corpus and simulated sample roster:
//
//	cdbench -exp table1     Table I   — 492 samples by family/class, median files lost
//	cdbench -exp fig3       Figure 3  — cumulative % of samples detected vs files lost
//	cdbench -exp fig4       Figure 4  — directory traversal patterns (TeslaCrypt/CTB-Locker/GPcode)
//	cdbench -exp fig5       Figure 5  — file-extension attack frequency
//	cdbench -exp fig6       Figure 6  — benign false positives vs threshold
//	cdbench -exp union      §V-B2    — union-indicator effectiveness
//	cdbench -exp smallfile  §V-C     — CTB-Locker rerun without sub-512B files
//	cdbench -exp perf       §V-H     — per-operation latency overhead
//	cdbench -exp ablation   DESIGN.md — engine design-choice ablations
//	cdbench -exp evasion    §III-F   — indicator-evasion strategies
//	cdbench -exp curves     §V-F     — reputation-score trajectories
//	cdbench -exp multiproc  §IV-A    — multi-process score dilution vs family scoring
//	cdbench -exp recovery   §VII      — files lost before vs after versioned-backend rollback
//	cdbench -exp paper      one roster run feeding Table I/Fig 3/Fig 5/union + the rest
//	cdbench -exp all        everything above
//
// By default the full paper scale is used (5,099 files, 511 directories,
// 492 samples); -quick runs a reduced configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"cryptodrop"
	"cryptodrop/internal/benign"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/experiments"
	"cryptodrop/internal/ransomware"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdbench:", err)
		os.Exit(1)
	}
}

type config struct {
	exp     string
	seed    int64
	files   int
	dirs    int
	scale   float64
	samples int
	verbose bool
	dotOut  string
	quick   bool
	workers int
	jsonOut string
	// Measurement-optimisation knobs (DESIGN.md "Measurement tiers and
	// memoization"); applied to the roster-driven experiments (table1,
	// fig3, fig4, fig5, fig6, union, paper).
	cacheMB     int
	tier        string
	sampleKB    int
	incremental bool
	// Wire-ingest load-generator knobs (-exp wire, -serve, -remote).
	remote       string
	serveAddr    string
	wireSessions int
	wireOps      int
	wireBatch    int
	wireBytes    int
	wireIters    int
}

// monitorOpts translates the measurement-optimisation flags into monitor
// options for the experiment runners. A positive -measure-cache-mb builds
// one cache shared by every monitor in the run (the fleet-dedup
// configuration; the cache is safe for concurrent engines).
func (cfg config) monitorOpts() ([]cryptodrop.Option, error) {
	var opts []cryptodrop.Option
	if cfg.cacheMB > 0 {
		opts = append(opts, cryptodrop.WithMeasureCache(cryptodrop.NewMeasureCache(int64(cfg.cacheMB)<<20)))
	}
	switch cfg.tier {
	case "", "full":
	case "sampled":
		opts = append(opts, cryptodrop.WithSampledTier(cfg.sampleKB<<10))
	default:
		return nil, fmt.Errorf("unknown tier %q (want full or sampled)", cfg.tier)
	}
	if cfg.incremental {
		opts = append(opts, cryptodrop.WithIncrementalEntropy())
	}
	return opts, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdbench", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.exp, "exp", "all", "experiment: table1|fig3|fig4|fig5|fig6|union|smallfile|perf|ablation|evasion|recovery|paper|wire|all")
	fs.Int64Var(&cfg.seed, "seed", 2016, "master seed for corpus and roster")
	fs.IntVar(&cfg.files, "files", corpus.DefaultFiles, "corpus file count")
	fs.IntVar(&cfg.dirs, "dirs", corpus.DefaultDirs, "corpus directory count")
	fs.Float64Var(&cfg.scale, "scale", 1.0, "corpus file-size scale")
	fs.IntVar(&cfg.samples, "samples", 0, "cap roster size (0 = full 492)")
	fs.BoolVar(&cfg.verbose, "v", false, "progress output")
	fs.StringVar(&cfg.dotOut, "dot", "", "also write Fig. 4 Graphviz files to this directory")
	fs.BoolVar(&cfg.quick, "quick", false, "reduced scale (800 files, 80 dirs, 1 sample per family/class)")
	fs.IntVar(&cfg.workers, "workers", runtime.NumCPU(), "parallel sample workers")
	fs.StringVar(&cfg.jsonOut, "json", "", "also export roster outcomes as JSON to this file")
	fs.IntVar(&cfg.cacheMB, "measure-cache-mb", 0, "measurement memo cache shared across the run's monitors, in MiB (0 = off)")
	fs.StringVar(&cfg.tier, "tier", "full", "measurement tier: full, or sampled for the two-tier ladder")
	fs.IntVar(&cfg.sampleKB, "sample-kb", 0, "sampled-tier header sample size in KiB (0 = default 8)")
	fs.BoolVar(&cfg.incremental, "incremental", false, "maintain incremental per-file entropy histograms")
	fs.StringVar(&cfg.serveAddr, "serve", "", "run the wire-ingest service half on this address and block (two-process benchmarking)")
	fs.StringVar(&cfg.remote, "remote", "", "drive -exp wire against a running service at this base URL instead of an embedded one")
	fs.IntVar(&cfg.wireSessions, "wire-sessions", 256, "concurrent wire sessions per trial (-exp wire)")
	fs.IntVar(&cfg.wireOps, "wire-ops", 100, "ops streamed per session (-exp wire)")
	fs.IntVar(&cfg.wireBatch, "wire-batch", 8, "ops per frame/submit batch (-exp wire)")
	fs.IntVar(&cfg.wireBytes, "wire-bytes", 4096, "staged content bytes per op (-exp wire)")
	fs.IntVar(&cfg.wireIters, "wire-iters", 5, "interleaved A/B iterations (-exp wire)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.serveAddr != "" {
		return runServe(cfg.serveAddr)
	}
	if cfg.quick {
		cfg.files, cfg.dirs, cfg.scale = 800, 80, 0.3
	}
	spec := corpus.Spec{Seed: cfg.seed, Files: cfg.files, Dirs: cfg.dirs, SizeScale: cfg.scale}
	roster := buildRoster(cfg)

	experimentsByName := map[string]func(config, corpus.Spec, []ransomware.Sample) error{
		"table1":    expTable1,
		"fig3":      expFig3,
		"fig4":      expFig4,
		"fig5":      expFig5,
		"fig6":      expFig6,
		"union":     expUnion,
		"smallfile": expSmallFile,
		"perf":      expPerf,
		"ablation":  expAblation,
		"evasion":   expEvasion,
		"multiproc": expMultiProc,
		"curves":    expCurves,
		"recovery":  expRecovery,
		"paper":     expPaper,
		"wire":      expWire,
	}
	if cfg.exp == "all" {
		for _, name := range []string{"table1", "fig3", "fig4", "fig5", "fig6", "union", "smallfile", "perf", "ablation", "evasion", "curves", "multiproc", "recovery"} {
			fmt.Printf("\n════════ %s ════════\n", name)
			if err := experimentsByName[name](cfg, spec, roster); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	fn, ok := experimentsByName[cfg.exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", cfg.exp)
	}
	return fn(cfg, spec, roster)
}

// buildRoster returns the evaluation roster per config.
func buildRoster(cfg config) []ransomware.Sample {
	roster := ransomware.Roster(cfg.seed)
	if cfg.quick && cfg.samples == 0 {
		seen := make(map[string]bool)
		var out []ransomware.Sample
		for _, s := range roster {
			key := s.Profile.Family + s.Profile.Class.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, s)
			}
		}
		return out
	}
	if cfg.samples > 0 && cfg.samples < len(roster) {
		return roster[:cfg.samples]
	}
	return roster
}

// runRoster executes the roster with optional progress output.
func runRoster(cfg config, spec corpus.Spec, roster []ransomware.Sample) ([]experiments.SampleOutcome, error) {
	opts, err := cfg.monitorOpts()
	if err != nil {
		return nil, err
	}
	r, err := experiments.NewRunner(spec, opts...)
	if err != nil {
		return nil, err
	}
	var progress func(int, experiments.SampleOutcome)
	if cfg.verbose {
		progress = func(i int, out experiments.SampleOutcome) {
			fmt.Fprintf(os.Stderr, "[%4d/%d] %-32s lost=%-4d union=%-5v score=%.1f\n",
				i+1, len(roster), out.Sample.ID, out.FilesLost, out.Union, out.Score)
		}
	}
	outcomes, err := r.RunRosterParallel(roster, cfg.workers, progress)
	if err != nil {
		return nil, err
	}
	if cfg.jsonOut != "" {
		f, err := os.Create(cfg.jsonOut)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := experiments.WriteOutcomesJSON(f, outcomes); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "outcomes exported to %s\n", cfg.jsonOut)
	}
	return outcomes, nil
}

// expPaper runs the roster once and renders every roster-derived artefact
// (Table I, Fig. 3, Fig. 5, union analysis) from the same outcomes, then
// the remaining experiments — the cheapest way to a full reproduction.
func expPaper(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	outcomes, err := runRoster(cfg, spec, roster)
	if err != nil {
		return err
	}
	fmt.Println("\n════════ Table I ════════")
	if err := experiments.BuildTable1(outcomes).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\n════════ Figure 3 ════════")
	if err := experiments.BuildFig3(outcomes).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\n════════ Figure 5 ════════")
	if err := experiments.RenderFig5(os.Stdout, experiments.BuildFig5(outcomes)); err != nil {
		return err
	}
	fmt.Println("\n════════ Union indication (§V-B2) ════════")
	if err := experiments.BuildUnionStats(outcomes).Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\n════════ Figure 4 ════════")
	if err := expFig4(cfg, spec, roster); err != nil {
		return err
	}
	fmt.Println("\n════════ Figure 6 ════════")
	if err := expFig6(cfg, spec, roster); err != nil {
		return err
	}
	fmt.Println("\n════════ Small-file rerun (§V-C) ════════")
	if err := expSmallFile(cfg, spec, roster); err != nil {
		return err
	}
	fmt.Println("\n════════ Performance (§V-H) ════════")
	return expPerf(cfg, spec, roster)
}

// expRecovery runs the detect-then-recover comparison: the roster twice,
// detection-only vs versioned-backend rollback, rendering median files lost
// before and after recovery per family and behavioural class.
func expRecovery(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	opts, err := cfg.monitorOpts()
	if err != nil {
		return err
	}
	tbl, err := experiments.RunRecoveryExperiment(spec, roster, opts...)
	if err != nil {
		return err
	}
	return tbl.Render(os.Stdout)
}

func expTable1(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	outcomes, err := runRoster(cfg, spec, roster)
	if err != nil {
		return err
	}
	return experiments.BuildTable1(outcomes).Render(os.Stdout)
}

func expFig3(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	outcomes, err := runRoster(cfg, spec, roster)
	if err != nil {
		return err
	}
	return experiments.BuildFig3(outcomes).Render(os.Stdout)
}

func expFig4(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	opts, err := cfg.monitorOpts()
	if err != nil {
		return err
	}
	r, err := experiments.NewRunner(spec, opts...)
	if err != nil {
		return err
	}
	picks := []struct {
		family string
		class  ransomware.Class
	}{
		{"TeslaCrypt", ransomware.ClassA},
		{"CTB-Locker", ransomware.ClassB},
		{"GPcode", ransomware.ClassC},
	}
	for _, p := range picks {
		var sample *ransomware.Sample
		for i := range roster {
			if roster[i].Profile.Family == p.family && roster[i].Profile.Class == p.class {
				sample = &roster[i]
				break
			}
		}
		if sample == nil {
			// Fall back to the full roster (quick mode may lack the combo).
			full := ransomware.Roster(cfg.seed)
			for i := range full {
				if full[i].Profile.Family == p.family && full[i].Profile.Class == p.class {
					sample = &full[i]
					break
				}
			}
		}
		if sample == nil {
			return fmt.Errorf("no %s class %v sample", p.family, p.class)
		}
		out, err := r.RunSample(*sample)
		if err != nil {
			return err
		}
		tree, err := experiments.BuildFig4Tree(r.CloneFS(), r.Manifest().Root, out)
		if err != nil {
			return err
		}
		if err := tree.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if cfg.dotOut != "" {
			if err := writeDOT(cfg.dotOut, p.family, tree); err != nil {
				return err
			}
		}
	}
	return nil
}

func expFig5(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	outcomes, err := runRoster(cfg, spec, roster)
	if err != nil {
		return err
	}
	return experiments.RenderFig5(os.Stdout, experiments.BuildFig5(outcomes))
}

func expFig6(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	opts, err := cfg.monitorOpts()
	if err != nil {
		return err
	}
	r, err := experiments.NewRunner(spec, opts...)
	if err != nil {
		return err
	}
	var apps []experiments.BenignOutcome
	for _, w := range benign.Detailed() {
		if cfg.verbose {
			fmt.Fprintf(os.Stderr, "running %s...\n", w.Name)
		}
		out, err := r.RunBenign(w)
		if err != nil {
			return err
		}
		apps = append(apps, out)
	}
	thresholds := []float64{0, 25, 50, 75, 100, 125, 150, 175, 200, 225, 250}
	return experiments.BuildFig6(apps, thresholds).Render(os.Stdout)
}

func expUnion(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	outcomes, err := runRoster(cfg, spec, roster)
	if err != nil {
		return err
	}
	return experiments.BuildUnionStats(outcomes).Render(os.Stdout)
}

func expSmallFile(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	res, err := experiments.RunSmallFileExperiment(spec, cfg.seed)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func expPerf(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	perfSpec := spec
	if perfSpec.Files > 800 {
		perfSpec.Files, perfSpec.Dirs = 800, 80
	}
	res, err := experiments.RunPerf(perfSpec, 200)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func expAblation(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	ablRoster := roster
	if !cfg.quick && cfg.samples == 0 && len(roster) > 100 {
		// Ablations rerun the roster seven times; subsample for tractability.
		var out []ransomware.Sample
		for i := 0; i < len(roster); i += 5 {
			out = append(out, roster[i])
		}
		ablRoster = out
		fmt.Printf("(ablations use a 1-in-5 subsample: %d samples)\n", len(ablRoster))
	}
	var progress func(string)
	if cfg.verbose {
		progress = func(v string) { fmt.Fprintf(os.Stderr, "ablation variant: %s\n", v) }
	}
	res, err := experiments.RunAblations(spec, ablRoster, progress)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func expEvasion(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	res, err := experiments.RunEvasionExperiment(spec, cfg.seed)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func expMultiProc(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	res, err := experiments.RunMultiProcessExperiment(spec, cfg.seed, []int{1, 4, 16})
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func expCurves(cfg config, spec corpus.Spec, roster []ransomware.Sample) error {
	res, err := experiments.RunScoreCurves(spec, cfg.seed,
		[]string{"TeslaCrypt", "CTB-Locker", "Xorist"},
		[]string{"Microsoft Word", "Microsoft Excel", "Adobe Lightroom"})
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func writeDOT(dir, family string, tree experiments.Fig4Tree) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(fmt.Sprintf("%s/fig4_%s.dot", dir, family))
	if err != nil {
		return err
	}
	defer f.Close()
	return tree.RenderDOT(f)
}
