package main

import (
	"strings"
	"testing"
)

// runExp drives the CLI entry point at a tiny scale.
func runExp(t *testing.T, exp string, extra ...string) {
	t.Helper()
	args := append([]string{
		"-exp", exp, "-files", "250", "-dirs", "30", "-scale", "0.25",
		"-samples", "6", "-workers", "2",
	}, extra...)
	if err := run(args); err != nil {
		t.Fatalf("cdbench -exp %s: %v", exp, err)
	}
}

func TestCLITable1(t *testing.T)    { runExp(t, "table1") }
func TestCLIFig3(t *testing.T)      { runExp(t, "fig3") }
func TestCLIFig5(t *testing.T)      { runExp(t, "fig5") }
func TestCLIUnion(t *testing.T)     { runExp(t, "union") }
func TestCLISmallFile(t *testing.T) { runExp(t, "smallfile") }
func TestCLIEvasion(t *testing.T)   { runExp(t, "evasion") }

func TestCLIFig4WritesDOT(t *testing.T) {
	dir := t.TempDir()
	runExp(t, "fig4", "-dot", dir)
}

func TestCLIPerf(t *testing.T) {
	if testing.Short() {
		t.Skip("perf sweep")
	}
	runExp(t, "perf")
}

func TestCLIUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "nonsense"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestCLIBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestBuildRosterQuickDedupes(t *testing.T) {
	cfg := config{quick: true, seed: 1}
	roster := buildRoster(cfg)
	if len(roster) != 25 { // one per family/class combination
		t.Fatalf("quick roster = %d samples, want 25", len(roster))
	}
	cfg = config{seed: 1, samples: 10}
	if got := len(buildRoster(cfg)); got != 10 {
		t.Fatalf("capped roster = %d", got)
	}
	cfg = config{seed: 1}
	if got := len(buildRoster(cfg)); got != 492 {
		t.Fatalf("full roster = %d", got)
	}
}
