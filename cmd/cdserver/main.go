// Command cdserver runs the detection service: a long-lived HTTP ingest
// plane where remote producers stream framed op batches into per-tenant
// detector sessions on an embedded multi-session host. Tenants, bearer
// tokens and rate limits come from a JSON config file that hot-reloads on
// SIGHUP (and by mtime polling), so token rotation and limit tuning never
// drop a stream.
//
//	cdserver -config tenants.json -addr :8420
//	cdserver -config tenants.json -checkpoint-dir /var/lib/cryptodrop \
//	         -checkpoint-every 256 -restore      # durable, resumable fleet
//
// Endpoints: POST /v1/ingest (wire streams), GET /v1/session (position),
// POST /v1/flush, /healthz, plus the observability plane — /metrics,
// /debug/sessions, /debug/vars, /debug/trace (with -trace-sample), pprof.
//
// SIGTERM or SIGINT drains gracefully: the listener stops accepting and
// /healthz flips to 503, in-flight streams are refused with 503 + draining,
// every ingest queue flushes, durable sessions checkpoint, and the process
// exits 0 with a per-session summary. Restarting with -restore resumes
// every session from its checkpointed position — producers resynchronize
// via GET /v1/session and continue.
//
// A minimal config:
//
//	{"tenants": [
//	  {"name": "alpha", "token": "tok-alpha", "rate_ops": 5000, "burst_ops": 10000},
//	  {"name": "beta",  "token": "tok-beta"}
//	]}
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cryptodrop/internal/host"
	"cryptodrop/internal/server"
	"cryptodrop/internal/server/config"
	"cryptodrop/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdserver", flag.ContinueOnError)
	var (
		cfgPath      = fs.String("config", "", "tenant config file (JSON; required)")
		addr         = fs.String("addr", ":8420", "listen address")
		root         = fs.String("root", "/", "engine protected root applied to every session")
		queue        = fs.Int("queue", host.DefaultQueueDepth, "default per-session ingest queue depth (batches)")
		degradeAfter = fs.Int("degrade-after", host.DefaultDegradeAfter, "consecutive queue saturations before a session degrades to payload-blind scoring")
		ckptDir      = fs.String("checkpoint-dir", "", "make sessions durable: checkpoints + write-ahead logs live here")
		ckptEvery    = fs.Int("checkpoint-every", 0, "auto-checkpoint a session every N ingested ops (0 = checkpoint only on drain)")
		restore      = fs.Bool("restore", false, "recover session state from -checkpoint-dir on first contact")
		drainWait    = fs.Duration("drain-timeout", 30*time.Second, "maximum graceful-drain wait before forced exit")
		reloadEvery  = fs.Duration("config-poll", 10*time.Second, "poll the config file's mtime this often (0 = SIGHUP only)")
		slowMs       = fs.Int("slow-ms", 0, "log ingested ops slower than this many milliseconds to /debug/sessions (0 = off)")
		traceSample  = fs.Int("trace-sample", 0, "record one in N ingested ops as causal spans on /debug/trace (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cfgPath == "" {
		return fmt.Errorf("-config is required")
	}
	if *restore && *ckptDir == "" {
		return fmt.Errorf("-restore requires -checkpoint-dir")
	}
	loader, err := config.Load(*cfgPath)
	if err != nil {
		return err
	}

	reg := telemetry.NewRegistry()
	var spans *telemetry.SpanTracer
	if *traceSample > 0 {
		spans = telemetry.NewSpanTracer(telemetry.DefaultSpanCapacity, *traceSample)
	}
	h := host.New(host.Config{
		QueueDepth:      *queue,
		DegradeAfter:    *degradeAfter,
		Telemetry:       reg,
		SlowOpThreshold: time.Duration(*slowMs) * time.Millisecond,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Restore:         *restore,
	})
	srv := server.New(h, loader, server.Options{
		ProtectedRoot: *root,
		Telemetry:     reg,
		Tracer:        spans,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Printf("cdserver: listening on %s (%d tenant(s))\n", ln.Addr(), len(loader.Current().Tenants))

	stopWatch := make(chan struct{})
	defer close(stopWatch)
	if *reloadEvery > 0 {
		go loader.Watch(*reloadEvery, stopWatch, func(err error) {
			if err != nil {
				fmt.Fprintln(os.Stderr, "cdserver: config reload failed:", err)
				return
			}
			srv.ReloadLimits()
		})
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM, os.Interrupt)

	for {
		select {
		case err := <-serveErr:
			return fmt.Errorf("serve: %w", err)
		case <-hup:
			if err := srv.Reload(); err != nil {
				fmt.Fprintln(os.Stderr, "cdserver: SIGHUP reload failed (previous config stays live):", err)
			} else {
				fmt.Printf("cdserver: config reloaded (%d tenant(s))\n", len(loader.Current().Tenants))
			}
		case sig := <-term:
			fmt.Printf("cdserver: %v — draining\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
			defer cancel()
			_ = httpSrv.Shutdown(ctx) // stop accepting; finish in-flight acks
			reports, err := srv.Drain(ctx)
			for _, rep := range reports {
				fmt.Printf("cdserver: session %-24s ingested=%d detections=%d degraded=%v\n",
					rep.ID, rep.Ingested, len(rep.Detections), rep.Degraded)
			}
			if err != nil {
				return fmt.Errorf("drain: %w", err)
			}
			fmt.Printf("cdserver: drained %d session(s), exiting\n", len(reports))
			return nil
		}
	}
}
