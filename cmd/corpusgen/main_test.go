package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCorpusgenWritesTree(t *testing.T) {
	out := t.TempDir()
	if err := run([]string{"-out", out, "-files", "60", "-dirs", "8", "-scale", "0.2"}); err != nil {
		t.Fatal(err)
	}
	files := 0
	readonly := 0
	err := filepath.WalkDir(out, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		files++
		info, err := d.Info()
		if err != nil {
			return err
		}
		if info.Mode().Perm()&0o200 == 0 {
			readonly++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if files != 60 {
		t.Fatalf("wrote %d files, want 60", files)
	}
	_ = readonly // read-only fraction is probabilistic; presence not asserted
}

func TestCorpusgenRequiresOut(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -out accepted")
	}
}

func TestCorpusgenMinSize(t *testing.T) {
	out := t.TempDir()
	if err := run([]string{"-out", out, "-files", "80", "-dirs", "8", "-minsize", "512"}); err != nil {
		t.Fatal(err)
	}
	err := filepath.WalkDir(out, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		if info.Size() < 512 {
			t.Errorf("%s is %d bytes, below the floor", p, info.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
