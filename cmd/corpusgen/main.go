// Command corpusgen materialises the synthetic user-document corpus onto
// the real filesystem for inspection or external use:
//
//	corpusgen -out /tmp/corpus -files 500 -dirs 60
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/vfs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("corpusgen", flag.ContinueOnError)
	var (
		out     = fs.String("out", "", "output directory (required)")
		seed    = fs.Int64("seed", 2016, "generation seed")
		files   = fs.Int("files", corpus.DefaultFiles, "file count")
		dirs    = fs.Int("dirs", corpus.DefaultDirs, "directory count")
		scale   = fs.Float64("scale", 1.0, "size scale")
		minSize = fs.Int("minsize", 0, "drop files smaller than this many bytes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	mem := vfs.New()
	m, err := corpus.Build(mem, corpus.Spec{
		Seed: *seed, Files: *files, Dirs: *dirs, SizeScale: *scale, MinSize: *minSize,
	})
	if err != nil {
		return err
	}
	var bytes int64
	for _, e := range m.Entries {
		rel := strings.TrimPrefix(e.Path, m.Root+"/")
		dst := filepath.Join(*out, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		content, err := mem.ReadFileRaw(e.Path)
		if err != nil {
			return err
		}
		mode := os.FileMode(0o644)
		if e.ReadOnly {
			mode = 0o444
		}
		if err := os.WriteFile(dst, content, mode); err != nil {
			return err
		}
		bytes += int64(len(content))
	}
	fmt.Printf("wrote %d files (%d directories, %.1f MiB) to %s\n",
		len(m.Entries), m.DirCount, float64(bytes)/(1<<20), *out)
	return nil
}
