// Command cdreplay re-scores a recorded operation trace offline:
//
//	cryptodrop -family TeslaCrypt -trace /tmp/t.jsonl   # capture
//	cdreplay -trace /tmp/t.jsonl                        # re-score
//	cdreplay -trace /tmp/t.jsonl -threshold 100         # what-if tuning
//
// The replay feeds the recorded event stream straight into a fresh detection
// engine — no filesystem is reconstructed. The engine's content lookups are
// served from a corpus content store rebuilt from the recorded machine's
// spec (same seed ⇒ same file IDs), so detections are reproducible and
// engine parameters can be tuned without re-running malware.
//
// Long replays can checkpoint and resume:
//
//	cdreplay -trace t.jsonl -checkpoint-dir /tmp/ck -checkpoint-every 5000
//	cdreplay -trace t.jsonl -resume /tmp/ck/ckpt-010000.cdck
//
// A checkpoint seals the engine's complete snapshot together with the record
// index it was taken at, under the engine's registry/config identity — a
// resume under different tuning flags is refused rather than silently
// diverging. Resuming fast-forwards the content store through the covered
// records and replays only the tail; the final scoreboard, detections and
// dumped flight traces are bit-identical to a straight-through replay.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cryptodrop/internal/core"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/snapshot"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/trace"
	"cryptodrop/internal/vfs"
)

// replayCheckpointVersion is the cdreplay checkpoint format version.
const replayCheckpointVersion = 1

// writeReplayCheckpoint seals {record index, engine snapshot} under the
// engine's identity into dir.
func writeReplayCheckpoint(dir string, idx int, eng *core.Engine) (string, error) {
	blob, err := eng.Snapshot()
	if err != nil {
		return "", err
	}
	reg, cfgHash := eng.SnapshotIdentity()
	enc := snapshot.NewEncoder()
	enc.Varint(int64(idx))
	enc.Bytes(blob)
	sealed := snapshot.Seal(snapshot.Header{
		Version: replayCheckpointVersion, Registry: reg, Config: cfgHash,
	}, enc.Data())
	path := filepath.Join(dir, fmt.Sprintf("ckpt-%08d.cdck", idx))
	return path, os.WriteFile(path, sealed, 0o644)
}

// readReplayCheckpoint verifies a checkpoint against eng's identity,
// restores the engine from it, and returns the record index to resume at.
func readReplayCheckpoint(path string, eng *core.Engine) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	h, payload, err := snapshot.Open(data)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	reg, cfgHash := eng.SnapshotIdentity()
	if err := h.Check(snapshot.Header{
		Version: replayCheckpointVersion, Registry: reg, Config: cfgHash,
	}); err != nil {
		if errors.Is(err, snapshot.ErrMismatch) {
			return 0, fmt.Errorf("%s: %w (was it taken under different tuning flags?)", path, err)
		}
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	d := snapshot.NewDecoder(payload)
	idx := int(d.Varint())
	blob := d.Bytes()
	if d.Err() != nil {
		return 0, fmt.Errorf("%s: %w", path, d.Err())
	}
	if idx < 0 {
		return 0, fmt.Errorf("%s: %w: negative record index", path, snapshot.ErrCorrupt)
	}
	if err := eng.Restore(blob); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	return idx, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdreplay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdreplay", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "trace file to replay (required)")
		seed      = fs.Int64("seed", 2016, "corpus seed of the recorded machine")
		files     = fs.Int("files", 1500, "corpus file count of the recorded machine")
		dirs      = fs.Int("dirs", 150, "corpus directory count")
		scale     = fs.Float64("scale", 0.5, "corpus size scale")
		threshold = fs.Float64("threshold", 0, "override the non-union threshold (0 = default)")
		noCorpus  = fs.Bool("no-corpus", false, "replay against an empty content store (trace-created files only)")
		traceOut  = fs.String("trace-out", "", "dump flight-recorder detection traces to this JSON file")
		spansOut  = fs.String("spans-out", "", "trace every operation's pipeline spans and write a Chrome trace-event JSON file")
		ckptDir   = fs.String("checkpoint-dir", "", "directory for -checkpoint-every checkpoint files")
		ckptEvery = fs.Int("checkpoint-every", 0, "write a resumable engine checkpoint every N records (0 = off; requires -checkpoint-dir)")
		resume    = fs.String("resume", "", "resume the replay from this checkpoint file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := trace.Read(f)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("trace %s is empty", *tracePath)
	}

	// Seed the replayer's content store from the recorded machine's corpus.
	// The corpus is built deterministically from the spec, so paths and file
	// IDs align with the recorded ones.
	replayer := trace.NewEventReplayer()
	root := corpus.DefaultRoot
	if !*noCorpus {
		fsys := vfs.New()
		m, err := corpus.Build(fsys, corpus.Spec{Seed: *seed, Files: *files, Dirs: *dirs, SizeScale: *scale})
		if err != nil {
			return err
		}
		root = m.Root
		if err := replayer.SeedFromFS(fsys); err != nil {
			return err
		}
	}

	cfg := core.DefaultConfig(root)
	if *threshold > 0 {
		cfg.NonUnionThreshold = *threshold
	}
	var flight *telemetry.FlightRecorder
	if *traceOut != "" {
		flight = telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
		cfg.FlightRecorder = flight
	}
	var spans *telemetry.SpanTracer
	if *spansOut != "" {
		// Offline replay wants the complete picture: sample every operation.
		spans = telemetry.NewSpanTracer(telemetry.DefaultSpanCapacity, 1)
		cfg.SpanTracer = spans
		cfg.SessionID = "replay"
	}
	if *ckptEvery > 0 && *ckptDir == "" {
		return fmt.Errorf("-checkpoint-every requires -checkpoint-dir")
	}
	eng := core.New(cfg, replayer)

	start := 0
	if *resume != "" {
		idx, err := readReplayCheckpoint(*resume, eng)
		if err != nil {
			return err
		}
		if idx > len(records) {
			return fmt.Errorf("%s covers %d records but the trace has only %d", *resume, idx, len(records))
		}
		// The engine resumes from its snapshot; the content store must arrive
		// at the same point, so fast-forward it through the covered records.
		ff := replayer.Advance(records[:idx])
		start = idx
		fmt.Printf("resumed at record %d (%d applied, %d skipped fast-forwarding the content store)\n",
			idx, ff.Applied, ff.Skipped)
	}

	var res trace.ReplayResult
	if *ckptEvery > 0 {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
		for i := start; i < len(records); i += *ckptEvery {
			end := min(i+*ckptEvery, len(records))
			r, err := replayer.Replay(eng, records[i:end])
			if err != nil {
				return err
			}
			res.Applied += r.Applied
			res.Skipped += r.Skipped
			path, err := writeReplayCheckpoint(*ckptDir, end, eng)
			if err != nil {
				return err
			}
			fmt.Printf("checkpoint at record %d: %s\n", end, path)
		}
	} else {
		res, err = replayer.Replay(eng, records[start:])
		if err != nil {
			return err
		}
	}
	fmt.Printf("replayed %d records: %d applied, %d skipped\n", len(records)-start, res.Applied, res.Skipped)
	for _, rep := range eng.Reports() {
		verdict := "clean"
		if rep.Detected {
			verdict = "DETECTED"
		}
		fmt.Printf("pid %d: score %.1f union=%v %s\n", rep.PID, rep.Score, rep.Union, verdict)
		inds := make([]core.Indicator, 0, len(rep.IndicatorPoints))
		for ind := range rep.IndicatorPoints {
			inds = append(inds, ind)
		}
		sort.Slice(inds, func(i, j int) bool { return inds[i] < inds[j] })
		for _, ind := range inds {
			fmt.Printf("   %-18v %.2f\n", ind, rep.IndicatorPoints[ind])
		}
	}
	if flight != nil {
		if err := dumpTraces(*traceOut, flight, eng.Detections()); err != nil {
			return err
		}
	}
	if spans != nil {
		if err := dumpSpans(*spansOut, spans); err != nil {
			return err
		}
	}
	return nil
}

// dumpSpans writes the recorded pipeline spans as a Chrome trace-event file
// (load in chrome://tracing or https://ui.perfetto.dev).
func dumpSpans(path string, spans *telemetry.SpanTracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := spans.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("write spans: %w", err)
	}
	fmt.Printf("span tracer: %d span(s) written to %s (%d dropped)\n", spans.Recorded(), path, spans.Dropped())
	return f.Close()
}

// dumpTraces writes one flight-recorder trace per detected scoring group;
// with no detections, every group's trace is dumped (the score trajectory is
// still useful for what-if tuning below the threshold).
func dumpTraces(path string, flight *telemetry.FlightRecorder, detections []core.Detection) error {
	var traces []telemetry.Trace
	if len(detections) > 0 {
		for _, d := range detections {
			traces = append(traces, flight.Trace(d.PID))
		}
	} else {
		traces = flight.Traces()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteTraces(f, traces); err != nil {
		f.Close()
		return fmt.Errorf("write traces: %w", err)
	}
	fmt.Printf("flight recorder: %d trace(s) written to %s\n", len(traces), path)
	return f.Close()
}
