// Command cdreplay re-scores a recorded operation trace offline:
//
//	cryptodrop -family TeslaCrypt -trace /tmp/t.jsonl   # capture
//	cdreplay -trace /tmp/t.jsonl                        # re-score
//	cdreplay -trace /tmp/t.jsonl -threshold 100         # what-if tuning
//
// The replay feeds the recorded event stream straight into a fresh detection
// engine — no filesystem is reconstructed. The engine's content lookups are
// served from a corpus content store rebuilt from the recorded machine's
// spec (same seed ⇒ same file IDs), so detections are reproducible and
// engine parameters can be tuned without re-running malware.
package main

import (
	"flag"
	"fmt"
	"os"

	"cryptodrop/internal/core"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/trace"
	"cryptodrop/internal/vfs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdreplay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdreplay", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "trace file to replay (required)")
		seed      = fs.Int64("seed", 2016, "corpus seed of the recorded machine")
		files     = fs.Int("files", 1500, "corpus file count of the recorded machine")
		dirs      = fs.Int("dirs", 150, "corpus directory count")
		scale     = fs.Float64("scale", 0.5, "corpus size scale")
		threshold = fs.Float64("threshold", 0, "override the non-union threshold (0 = default)")
		noCorpus  = fs.Bool("no-corpus", false, "replay against an empty content store (trace-created files only)")
		traceOut  = fs.String("trace-out", "", "dump flight-recorder detection traces to this JSON file")
		spansOut  = fs.String("spans-out", "", "trace every operation's pipeline spans and write a Chrome trace-event JSON file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := trace.Read(f)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("trace %s is empty", *tracePath)
	}

	// Seed the replayer's content store from the recorded machine's corpus.
	// The corpus is built deterministically from the spec, so paths and file
	// IDs align with the recorded ones.
	replayer := trace.NewEventReplayer()
	root := corpus.DefaultRoot
	if !*noCorpus {
		fsys := vfs.New()
		m, err := corpus.Build(fsys, corpus.Spec{Seed: *seed, Files: *files, Dirs: *dirs, SizeScale: *scale})
		if err != nil {
			return err
		}
		root = m.Root
		if err := replayer.SeedFromFS(fsys); err != nil {
			return err
		}
	}

	cfg := core.DefaultConfig(root)
	if *threshold > 0 {
		cfg.NonUnionThreshold = *threshold
	}
	var flight *telemetry.FlightRecorder
	if *traceOut != "" {
		flight = telemetry.NewFlightRecorder(telemetry.DefaultFlightCapacity)
		cfg.FlightRecorder = flight
	}
	var spans *telemetry.SpanTracer
	if *spansOut != "" {
		// Offline replay wants the complete picture: sample every operation.
		spans = telemetry.NewSpanTracer(telemetry.DefaultSpanCapacity, 1)
		cfg.SpanTracer = spans
		cfg.SessionID = "replay"
	}
	eng := core.New(cfg, replayer)

	res, err := replayer.Replay(eng, records)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d records: %d applied, %d skipped\n", len(records), res.Applied, res.Skipped)
	for _, rep := range eng.Reports() {
		verdict := "clean"
		if rep.Detected {
			verdict = "DETECTED"
		}
		fmt.Printf("pid %d: score %.1f union=%v %s\n", rep.PID, rep.Score, rep.Union, verdict)
		for ind, pts := range rep.IndicatorPoints {
			fmt.Printf("   %-18v %.2f\n", ind, pts)
		}
	}
	if flight != nil {
		if err := dumpTraces(*traceOut, flight, eng.Detections()); err != nil {
			return err
		}
	}
	if spans != nil {
		if err := dumpSpans(*spansOut, spans); err != nil {
			return err
		}
	}
	return nil
}

// dumpSpans writes the recorded pipeline spans as a Chrome trace-event file
// (load in chrome://tracing or https://ui.perfetto.dev).
func dumpSpans(path string, spans *telemetry.SpanTracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := spans.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("write spans: %w", err)
	}
	fmt.Printf("span tracer: %d span(s) written to %s (%d dropped)\n", spans.Recorded(), path, spans.Dropped())
	return f.Close()
}

// dumpTraces writes one flight-recorder trace per detected scoring group;
// with no detections, every group's trace is dumped (the score trajectory is
// still useful for what-if tuning below the threshold).
func dumpTraces(path string, flight *telemetry.FlightRecorder, detections []core.Detection) error {
	var traces []telemetry.Trace
	if len(detections) > 0 {
		for _, d := range detections {
			traces = append(traces, flight.Trace(d.PID))
		}
	} else {
		traces = flight.Traces()
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteTraces(f, traces); err != nil {
		f.Close()
		return fmt.Errorf("write traces: %w", err)
	}
	fmt.Printf("flight recorder: %d trace(s) written to %s\n", len(traces), path)
	return f.Close()
}
