package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/experiments"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/snapshot"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/trace"
)

// captureAttackTrace records one detected Class A attack over the Seed-7
// test corpus into dir and returns the trace path. Every cdreplay test
// replays against `-seed 7 -files 200 -dirs 20 -scale 0.25`.
func captureAttackTrace(t *testing.T, dir string) string {
	t.Helper()
	tracePath := filepath.Join(dir, "attack.jsonl")
	spec := corpus.Spec{Seed: 7, Files: 200, Dirs: 20, SizeScale: 0.25}
	var sample ransomware.Sample
	found := false
	for _, s := range ransomware.Roster(spec.Seed) {
		if s.Profile.Class == ransomware.ClassA {
			sample, found = s, true
			break
		}
	}
	if !found {
		t.Fatal("no Class A sample in roster")
	}
	runner, err := experiments.NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(f)
	runner.SetTraceRecorder(rec)
	out, err := runner.RunSample(sample)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("sample %s not detected during capture", sample.ID)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return tracePath
}

// replayArgs are the corpus flags matching captureAttackTrace's machine.
var replayArgs = []string{"-seed", "7", "-files", "200", "-dirs", "20", "-scale", "0.25"}

// TestReplayTraceOutRoundTrip captures an attack trace, replays it through
// the command with -trace-out, and checks the dumped flight-recorder JSON
// explains the replayed detection: a detection trace exists, parses back,
// and its ordered events sum to a score past the paper's union threshold.
func TestReplayTraceOutRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full capture+replay cycle")
	}
	dir := t.TempDir()
	tracePath := captureAttackTrace(t, dir)
	outPath := filepath.Join(dir, "flight.json")

	// Replay through the command with flight-recorder dumping and full
	// pipeline span tracing on.
	spansPath := filepath.Join(dir, "spans.json")
	args := append([]string{
		"-trace", tracePath,
		"-trace-out", outPath,
		"-spans-out", spansPath,
	}, replayArgs...)
	if err := run(args); err != nil {
		t.Fatalf("cdreplay run: %v", err)
	}

	// The span dump is a valid Chrome trace with spans from every pipeline
	// stage the replay exercises: dispatch, awards and policy decisions.
	rawSpans, err := os.ReadFile(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			Cat   string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rawSpans, &chrome); err != nil {
		t.Fatalf("spans-out is not valid Chrome trace JSON: %v", err)
	}
	spanCats := make(map[string]int)
	for _, ev := range chrome.TraceEvents {
		if ev.Phase == "X" {
			spanCats[ev.Cat]++
		}
	}
	for _, cat := range []string{"dispatch", "award", "policy"} {
		if spanCats[cat] == 0 {
			t.Fatalf("span dump has no %q spans (cats: %v)", cat, spanCats)
		}
	}

	// Round-trip: the dumped JSON parses back into traces.
	g, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	traces, err := telemetry.ReadTraces(g)
	if err != nil {
		t.Fatalf("parse dumped traces: %v", err)
	}
	if len(traces) == 0 {
		t.Fatal("no traces dumped for a detected replay")
	}
	tr := traces[0]
	if len(tr.Events) == 0 {
		t.Fatal("detection trace has no events")
	}
	sum := 0.0
	var prevSeq uint64
	for i, ev := range tr.Events {
		sum += ev.Points
		if i > 0 && ev.Seq <= prevSeq {
			t.Fatalf("events out of order: seq %d then %d", prevSeq, ev.Seq)
		}
		prevSeq = ev.Seq
	}
	if math.Abs(sum-tr.TotalPoints) > 1e-9 {
		t.Fatalf("event points sum to %g, TotalPoints says %g", sum, tr.TotalPoints)
	}
	// The replayed detection crossed a detection threshold; the union
	// threshold (140) is the lowest possible.
	if tr.TotalPoints < 140 {
		t.Fatalf("detection trace sums to %g, below any detection threshold", tr.TotalPoints)
	}
	if last := tr.Events[len(tr.Events)-1]; math.Abs(last.ScoreAfter-sum) > 1e-9 {
		t.Fatalf("final ScoreAfter %g disagrees with cumulative points %g", last.ScoreAfter, sum)
	}
}

func TestReplayRequiresTrace(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -trace accepted")
	}
}

// TestReplayCheckpointResumeRoundTrip pins the cdreplay resume contract:
// a checkpointing replay emits resumable checkpoints, and resuming from ANY
// of them reproduces the straight-through replay's flight-trace dump byte
// for byte. A resume under drifted tuning flags is refused.
func TestReplayCheckpointResumeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full capture+replay cycle")
	}
	dir := t.TempDir()
	tracePath := captureAttackTrace(t, dir)

	// Straight-through reference dump.
	refOut := filepath.Join(dir, "ref.json")
	if err := run(append([]string{"-trace", tracePath, "-trace-out", refOut}, replayArgs...)); err != nil {
		t.Fatalf("reference replay: %v", err)
	}
	want, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}

	// Checkpointing replay: same verdicts, plus emitted checkpoints.
	ckDir := filepath.Join(dir, "ck")
	ckOut := filepath.Join(dir, "ck.json")
	if err := run(append([]string{"-trace", tracePath, "-trace-out", ckOut,
		"-checkpoint-dir", ckDir, "-checkpoint-every", "40"}, replayArgs...)); err != nil {
		t.Fatalf("checkpointing replay: %v", err)
	}
	if got, err := os.ReadFile(ckOut); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("chunked replay dump diverged from straight-through (err=%v)", err)
	}
	ckpts, err := filepath.Glob(filepath.Join(ckDir, "ckpt-*.cdck"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) < 2 {
		t.Fatalf("only %d checkpoints emitted; the resume loop needs at least 2", len(ckpts))
	}
	sort.Strings(ckpts)

	// Resume from every emitted checkpoint (the final one included: a pure
	// restore with an empty tail) and demand the identical dump.
	for i, ck := range ckpts {
		out := filepath.Join(dir, fmt.Sprintf("resume-%d.json", i))
		if err := run(append([]string{"-trace", tracePath, "-trace-out", out,
			"-resume", ck}, replayArgs...)); err != nil {
			t.Fatalf("resume from %s: %v", ck, err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("resume from %s diverged from the straight-through replay", ck)
		}
	}

	// Drifted tuning flags → typed refusal, not silent divergence.
	err = run(append([]string{"-trace", tracePath, "-threshold", "100",
		"-resume", ckpts[0]}, replayArgs...))
	if !errors.Is(err, snapshot.ErrMismatch) {
		t.Fatalf("drifted resume: got %v, want ErrMismatch", err)
	}
}
