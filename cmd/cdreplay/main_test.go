package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/experiments"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/telemetry"
	"cryptodrop/internal/trace"
)

// TestReplayTraceOutRoundTrip captures an attack trace, replays it through
// the command with -trace-out, and checks the dumped flight-recorder JSON
// explains the replayed detection: a detection trace exists, parses back,
// and its ordered events sum to a score past the paper's union threshold.
func TestReplayTraceOutRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full capture+replay cycle")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "attack.jsonl")
	outPath := filepath.Join(dir, "flight.json")

	// Capture: run one Class A sample against a small corpus, recording the
	// operation stream — the same capture path cmd/cryptodrop -trace uses.
	spec := corpus.Spec{Seed: 7, Files: 200, Dirs: 20, SizeScale: 0.25}
	var sample ransomware.Sample
	found := false
	for _, s := range ransomware.Roster(spec.Seed) {
		if s.Profile.Class == ransomware.ClassA {
			sample, found = s, true
			break
		}
	}
	if !found {
		t.Fatal("no Class A sample in roster")
	}
	runner, err := experiments.NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(f)
	runner.SetTraceRecorder(rec)
	out, err := runner.RunSample(sample)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("sample %s not detected during capture", sample.ID)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay through the command with flight-recorder dumping and full
	// pipeline span tracing on.
	spansPath := filepath.Join(dir, "spans.json")
	args := []string{
		"-trace", tracePath,
		"-seed", "7", "-files", "200", "-dirs", "20", "-scale", "0.25",
		"-trace-out", outPath,
		"-spans-out", spansPath,
	}
	if err := run(args); err != nil {
		t.Fatalf("cdreplay run: %v", err)
	}

	// The span dump is a valid Chrome trace with spans from every pipeline
	// stage the replay exercises: dispatch, awards and policy decisions.
	rawSpans, err := os.ReadFile(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			Cat   string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rawSpans, &chrome); err != nil {
		t.Fatalf("spans-out is not valid Chrome trace JSON: %v", err)
	}
	spanCats := make(map[string]int)
	for _, ev := range chrome.TraceEvents {
		if ev.Phase == "X" {
			spanCats[ev.Cat]++
		}
	}
	for _, cat := range []string{"dispatch", "award", "policy"} {
		if spanCats[cat] == 0 {
			t.Fatalf("span dump has no %q spans (cats: %v)", cat, spanCats)
		}
	}

	// Round-trip: the dumped JSON parses back into traces.
	g, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	traces, err := telemetry.ReadTraces(g)
	if err != nil {
		t.Fatalf("parse dumped traces: %v", err)
	}
	if len(traces) == 0 {
		t.Fatal("no traces dumped for a detected replay")
	}
	tr := traces[0]
	if len(tr.Events) == 0 {
		t.Fatal("detection trace has no events")
	}
	sum := 0.0
	var prevSeq uint64
	for i, ev := range tr.Events {
		sum += ev.Points
		if i > 0 && ev.Seq <= prevSeq {
			t.Fatalf("events out of order: seq %d then %d", prevSeq, ev.Seq)
		}
		prevSeq = ev.Seq
	}
	if math.Abs(sum-tr.TotalPoints) > 1e-9 {
		t.Fatalf("event points sum to %g, TotalPoints says %g", sum, tr.TotalPoints)
	}
	// The replayed detection crossed a detection threshold; the union
	// threshold (140) is the lowest possible.
	if tr.TotalPoints < 140 {
		t.Fatalf("detection trace sums to %g, below any detection threshold", tr.TotalPoints)
	}
	if last := tr.Events[len(tr.Events)-1]; math.Abs(last.ScoreAfter-sum) > 1e-9 {
		t.Fatalf("final ScoreAfter %g disagrees with cumulative points %g", last.ScoreAfter, sum)
	}
}

func TestReplayRequiresTrace(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -trace accepted")
	}
}
