package cryptodrop_test

import (
	"context"
	"crypto/sha256"
	"testing"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/vfs"
)

// countLost verifies manifest hashes the way the paper does after each run:
// an original file survives if content with its hash exists anywhere on
// disk, regardless of path.
func countLost(fs *vfs.FS, m *corpus.Manifest) int {
	surviving := make(map[[32]byte]bool, len(m.Entries))
	_ = fs.Walk("/", func(info vfs.FileInfo) error {
		if info.IsDir {
			return nil
		}
		content, err := fs.ReadFileRaw(info.Path)
		if err != nil {
			return nil
		}
		surviving[sha256.Sum256(content)] = true
		return nil
	})
	lost := 0
	for _, e := range m.Entries {
		if !surviving[e.SHA256] {
			lost++
		}
	}
	return lost
}

// TestDetectThenRecoverRestoresFiles pins the tentpole end to end: with
// WithRecovery armed, the files a Class A sample encrypts before detection
// roll back from retained pre-images, so no original content is lost.
func TestDetectThenRecoverRestoresFiles(t *testing.T) {
	vs := cryptodrop.NewVersionStore(0)
	fs, m, procs, mon := newVictim(t, cryptodrop.WithRecovery(vs))
	s := testSample(11)
	pid := procs.Spawn(s.ID)
	res, err := s.Run(fs, pid, m.Root, func() bool { return procs.Suspended(pid) })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Suspended || res.FilesAttacked == 0 {
		t.Fatalf("sample outcome %+v: want suspension after some damage", res)
	}
	if lost := countLost(fs, m); lost != 0 {
		t.Fatalf("%d files lost after recovery, want 0 (attacked %d)", lost, res.FilesAttacked)
	}
	recs := mon.Recoveries()
	if len(recs) != 1 {
		t.Fatalf("recoveries = %d, want 1", len(recs))
	}
	if recs[0].FilesRestored+recs[0].FilesRecreated == 0 || recs[0].Failures != 0 {
		t.Fatalf("recovery outcome %+v: want restored files and no failures", recs[0])
	}
	rep, err := mon.Shutdown(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recoveries) != 1 || rep.Recoveries[0] != recs[0] {
		t.Fatalf("session report recoveries = %+v, want %+v", rep.Recoveries, recs)
	}
}

// TestRecoverySurvivesShadowCopyWipe pins the out-of-band property: a
// TeslaCrypt-style sample wipes every shadow copy before encrypting, yet the
// version store's pre-images are untouched and rollback still restores the
// corpus.
func TestRecoverySurvivesShadowCopyWipe(t *testing.T) {
	vs := cryptodrop.NewVersionStore(0)
	fs, m, procs, _ := newVictim(t, cryptodrop.WithRecovery(vs))
	fs.CreateShadowCopy("daily")
	s := testSample(12)
	s.Profile.DeleteShadowCopies = true
	pid := procs.Spawn(s.ID)
	res, err := s.Run(fs, pid, m.Root, func() bool { return procs.Suspended(pid) })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Suspended {
		t.Fatalf("sample not suspended: %+v", res)
	}
	if n := len(fs.ShadowCopies()); n != 0 {
		t.Fatalf("%d shadow copies survived the wipe; the sample should reach them all", n)
	}
	if lost := countLost(fs, m); lost != 0 {
		t.Fatalf("%d files lost: pre-images should survive the shadow wipe", lost)
	}
}

// TestRecoveryDoesNotChangeVerdicts pins bit-identical scoring: the same
// sample run with and without WithRecovery produces identical detections
// (score, op index, union state) — retention rides the pre-operation path
// and rollback happens after the verdict, so scoring never observes either.
func TestRecoveryDoesNotChangeVerdicts(t *testing.T) {
	run := func(arm bool) []cryptodrop.Detection {
		opts := []cryptodrop.Option(nil)
		if arm {
			opts = append(opts, cryptodrop.WithRecovery(cryptodrop.NewVersionStore(0)))
		}
		fs, m, procs, mon := newVictim(t, opts...)
		s := testSample(13)
		pid := procs.Spawn(s.ID)
		if _, err := s.Run(fs, pid, m.Root, func() bool { return procs.Suspended(pid) }); err != nil {
			t.Fatal(err)
		}
		return mon.Detections()
	}
	plain, armed := run(false), run(true)
	if len(plain) != 1 || len(armed) != 1 {
		t.Fatalf("detections: plain %d, armed %d, want 1 each", len(plain), len(armed))
	}
	if plain[0].Score != armed[0].Score || plain[0].OpIndex != armed[0].OpIndex || plain[0].Union != armed[0].Union {
		t.Fatalf("verdict diverged: plain %+v, armed %+v", plain[0], armed[0])
	}
}

// TestExonerationReleasesPreImages pins the GC path: a process that modifies
// protected files without ever being flagged holds retention only until the
// session ends — shutdown exonerates undetected groups and the store drains.
func TestExonerationReleasesPreImages(t *testing.T) {
	vs := cryptodrop.NewVersionStore(0)
	fs, m, procs, mon := newVictim(t, cryptodrop.WithRecovery(vs))
	pid := procs.Spawn("winword.exe")
	// A benign edit: rewrite one document in place.
	target := m.Entries[0].Path
	if err := fs.WriteFile(pid, target, []byte("minor edit, same document")); err != nil {
		t.Fatal(err)
	}
	if st := vs.Stats(); st.Files != 1 {
		t.Fatalf("retention after benign edit = %+v, want 1 file held", st)
	}
	if _, err := mon.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := vs.Stats()
	if st.Files != 0 || st.Released == 0 {
		t.Fatalf("retention after shutdown = %+v, want everything released", st)
	}
}

// TestAllowExemptsFamilyFromCapture pins the operator path: once a flagged
// family is allowed, its retained pre-images drop and no further capture
// happens for any member.
func TestAllowExemptsFamilyFromCapture(t *testing.T) {
	vs := cryptodrop.NewVersionStore(0)
	fs, m, procs, mon := newVictim(t, cryptodrop.WithRecovery(vs))
	pid := procs.Spawn("backup-tool.exe")
	if err := fs.WriteFile(pid, m.Entries[0].Path, []byte("rewrite 1")); err != nil {
		t.Fatal(err)
	}
	if st := vs.Stats(); st.Files != 1 {
		t.Fatalf("capture before allow = %+v", st)
	}
	if err := mon.Allow(pid); err != nil {
		t.Fatal(err)
	}
	if st := vs.Stats(); st.Files != 0 {
		t.Fatalf("retention after allow = %+v, want dropped", st)
	}
	if err := fs.WriteFile(pid, m.Entries[1].Path, []byte("rewrite 2")); err != nil {
		t.Fatal(err)
	}
	if st := vs.Stats(); st.Files != 0 {
		t.Fatalf("allowed process still captured: %+v", st)
	}
}

// TestRecoveryAcrossMounts pins the tentpole on a heterogeneous tree: with
// the documents root split across the default in-memory backend and a
// second mounted backend, capture and rollback cover both sides.
func TestRecoveryAcrossMounts(t *testing.T) {
	fs := vfs.New()
	if err := fs.Mount("/Users/victim/Documents/archive", vfs.NewMemory()); err != nil {
		t.Fatal(err)
	}
	m, err := corpus.Build(fs, corpus.Spec{Seed: 40, Files: 300, Dirs: 40, SizeScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	procs := proc.NewTable()
	vs := cryptodrop.NewVersionStore(0)
	mon, err := cryptodrop.NewMonitor(fs, procs,
		cryptodrop.WithRoot(m.Root), cryptodrop.WithRecovery(vs))
	if err != nil {
		t.Fatal(err)
	}
	// Seed one extra document inside the mounted subtree, then attack.
	if err := fs.WriteFile(1, "/Users/victim/Documents/archive/old.txt", []byte("archived report")); err != nil {
		t.Fatal(err)
	}
	s := testSample(14)
	s.Profile.RenameExt = "" // in-place rewrite, no cross-mount renames
	pid := procs.Spawn(s.ID)
	res, err := s.Run(fs, pid, m.Root, func() bool { return procs.Suspended(pid) })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Suspended {
		t.Fatalf("sample not suspended: %+v", res)
	}
	if lost := countLost(fs, m); lost != 0 {
		t.Fatalf("%d files lost after cross-mount recovery", lost)
	}
	if recs := mon.Recoveries(); len(recs) != 1 || recs[0].Failures != 0 {
		t.Fatalf("recoveries = %+v", recs)
	}
}

// TestAuditBundleCarriesRecovery pins the audit surface: a detection under
// WithRecovery emits a bundle stamped with the rollback outcome.
func TestAuditBundleCarriesRecovery(t *testing.T) {
	sink := &memBundleSink{}
	vs := cryptodrop.NewVersionStore(0)
	fs, m, procs, _ := newVictim(t,
		cryptodrop.WithRecovery(vs), cryptodrop.WithAuditSink(sink))
	s := testSample(15)
	pid := procs.Spawn(s.ID)
	if _, err := s.Run(fs, pid, m.Root, func() bool { return procs.Suspended(pid) }); err != nil {
		t.Fatal(err)
	}
	if len(sink.bundles) != 1 {
		t.Fatalf("audit bundles = %d, want 1", len(sink.bundles))
	}
	rec := sink.bundles[0].Recovery
	if rec == nil {
		t.Fatal("bundle has no recovery record")
	}
	if rec.Group != sink.bundles[0].PID || rec.FilesRestored+rec.FilesRecreated == 0 {
		t.Fatalf("recovery record = %+v", rec)
	}
}

type memBundleSink struct{ bundles []*cryptodrop.AuditBundle }

func (s *memBundleSink) Emit(b *cryptodrop.AuditBundle) { s.bundles = append(s.bundles, b) }
