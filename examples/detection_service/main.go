// Detection as a service: run the ingest server in-process, stream two
// tenants' workloads at it over the wire — one benign (editor saves), one
// an in-place encryption attack built from the cryptodrop.Op* constructors
// — and show that the ransomware tenant's session alerts while the benign
// tenant's stays clean. The same binary-framed protocol, auth, rate limits
// and typed refusals apply when the server is a real cdserver across the
// network.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"

	"cryptodrop"
	"cryptodrop/internal/host"
	"cryptodrop/internal/server"
	"cryptodrop/internal/server/client"
	"cryptodrop/internal/server/config"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// 1. A tenant table: two producers with their own bearer tokens. A real
	//    deployment hands this file to cdserver -config.
	cfgPath := filepath.Join(os.TempDir(), "cdserver-example.json")
	tenants := `{"tenants": [
		{"name": "workstation", "token": "tok-workstation"},
		{"name": "fileserver",  "token": "tok-fileserver", "rate_ops": 10000}
	]}`
	if err := os.WriteFile(cfgPath, []byte(tenants), 0o600); err != nil {
		return err
	}
	defer os.Remove(cfgPath)
	loader, err := config.Load(cfgPath)
	if err != nil {
		return err
	}

	// 2. The service: a multi-session detector host behind the wire API.
	//    (cmd/cdserver wraps exactly this in a real listener + signals.)
	h := host.New(host.Config{})
	srv := httptest.NewServer(server.New(h, loader, server.Options{}).Handler())
	defer srv.Close()
	fmt.Printf("service: listening at %s\n", srv.URL)

	// 3. The benign tenant: a text editor saving drafts — content changes a
	//    little, stays the same type, keeps its entropy low.
	editor, err := client.New(srv.URL, "tok-workstation").Open(ctx, "home-dirs")
	if err != nil {
		return err
	}
	const editorPID = 300
	for rev := 0; rev < 8; rev++ {
		var ops []cryptodrop.Op
		for id := uint64(1); id <= 20; id++ {
			path := fmt.Sprintf("/docs/notes/ch%02d.txt", id)
			before := draft(id, rev)
			after := draft(id, rev+1)
			ops = append(ops, cryptodrop.OpWrite(editorPID, path, id, before, after))
		}
		if err := editor.Submit(ctx, ops...); err != nil {
			return err
		}
	}

	// 4. The attacked tenant: ransomware rewriting every document with
	//    ciphertext, then marking it with a ransom extension.
	victim, err := client.New(srv.URL, "tok-fileserver").Open(ctx, "share-a")
	if err != nil {
		return err
	}
	const evilPID = 666
	var attack []cryptodrop.Op
	for id := uint64(1); id <= 30; id++ {
		path := fmt.Sprintf("/docs/share/report%03d.txt", id)
		plain := draft(id, 0)
		attack = append(attack,
			cryptodrop.OpWrite(evilPID, path, id, plain, encrypt(id, len(plain))),
			cryptodrop.OpRename(evilPID, path, path+".locked", id),
		)
	}
	if err := victim.Submit(ctx, attack...); err != nil {
		return err
	}

	// 5. Flush both streams and read the verdicts off the acks.
	edAck, err := editor.Flush(ctx)
	if err != nil {
		return err
	}
	vicAck, err := victim.Flush(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("workstation/home-dirs: %3d ops ingested, %d detection(s)\n", edAck.Ingested, edAck.Detections)
	fmt.Printf("fileserver/share-a:    %3d ops ingested, %d detection(s)\n", vicAck.Ingested, vicAck.Detections)
	if edAck.Detections != 0 {
		return fmt.Errorf("false positive: benign tenant flagged")
	}
	if vicAck.Detections == 0 {
		return fmt.Errorf("miss: ransomware tenant not flagged")
	}
	fmt.Println("\nverdict: the attacked tenant alerted; the benign tenant stayed clean.")
	return nil
}

// draft is revision rev of document id: low-entropy prose that changes
// slightly between revisions.
func draft(id uint64, rev int) []byte {
	line := fmt.Sprintf("chapter %d, revision %d: steady prose, the kind a person types.\n", id, rev)
	return bytes.Repeat([]byte(line), 30)
}

// encrypt is deterministic high-entropy ciphertext of the given length.
func encrypt(id uint64, n int) []byte {
	out := make([]byte, 0, n+32)
	seed := sha256.Sum256([]byte{byte(id), byte(id >> 8)})
	block := seed[:]
	for len(out) < n {
		s := sha256.Sum256(block)
		block = s[:]
		out = append(out, block...)
	}
	return out[:n]
}
