// Benign workloads: run the five applications the paper analyses in depth
// (§V-F, Fig. 6) plus 7-zip under the monitor and print their final
// reputation scores — all but 7-zip must stay below the 200-point
// threshold, and none may trigger union indication.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cryptodrop/internal/benign"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	runner, err := experiments.NewRunner(corpus.Spec{
		Seed: 13, Files: 800, Dirs: 80, SizeScale: 0.35,
	})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Application\tScore\tUnion\tFlagged\tActivity")
	for _, w := range benign.Detailed() {
		out, err := runner.RunBenign(w)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%v\t%v\t%s\n",
			w.Name, out.Score, out.Union, out.Detected, w.Description)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Println("\nNote: the 7-zip detection is expected and desirable (§V-G): bulk")
	fmt.Println("transformation of the documents tree is exactly what CryptoDrop watches for.")
	return nil
}
