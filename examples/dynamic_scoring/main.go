// Dynamic scoring: the paper's §V-C future-work idea. CTB-Locker attacks
// the smallest .txt/.md files first; files under 512 bytes yield no
// similarity digest, so union indication is impossible until the sample
// moves past them and detection is slow. CryptoDrop could "adjust the number
// of reputation points assessed up or down for individual indicators" when
// it identifies conditions unfavourable to one of them.
//
// This example implements that adjustment with the public options: it
// inspects the corpus, detects that it is small-file-heavy, and compensates
// by re-weighting the indicators that still work on small files (type
// change, deletion). It then compares files lost with and without the
// adjustment.
package main

import (
	"fmt"
	"log"

	"cryptodrop"
	"cryptodrop/internal/benign"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/experiments"
	"cryptodrop/internal/ransomware"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec := corpus.Spec{Seed: 17, Files: 1500, Dirs: 120, SizeScale: 0.4}

	// Find a CTB-Locker Class B specimen (size-ascending over .txt/.md).
	var sample ransomware.Sample
	for _, s := range ransomware.Roster(17) {
		if s.Profile.Family == "CTB-Locker" && s.Profile.Class == ransomware.ClassB {
			sample = s
			break
		}
	}

	// Baseline: the static default scoring.
	baseline, err := experiments.NewRunner(spec)
	if err != nil {
		return err
	}
	baseOut, err := baseline.RunSample(sample)
	if err != nil {
		return err
	}

	// Dynamic scoring: inspect the corpus the way a deployed CryptoDrop
	// could inspect the protected tree, and boost the indicators that
	// remain effective when similarity digests are unavailable.
	small := len(baseline.Manifest().SmallerThan(512))
	total := len(baseline.Manifest().Entries)
	adjusted := cryptodrop.DefaultPoints()
	if frac := float64(small) / float64(total); frac > 0.02 {
		fmt.Printf("corpus is small-file-heavy (%d/%d files < 512 B): boosting type-change and deletion\n\n", small, total)
		adjusted.TypeChange *= 2.5
		adjusted.Deletion *= 1.5
	}
	dynamic, err := experiments.NewRunner(spec, cryptodrop.WithPoints(adjusted))
	if err != nil {
		return err
	}
	dynOut, err := dynamic.RunSample(sample)
	if err != nil {
		return err
	}

	fmt.Printf("%-28s files lost = %d (score %.1f, union=%v)\n", "static scoring:", baseOut.FilesLost, baseOut.Score, baseOut.Union)
	fmt.Printf("%-28s files lost = %d (score %.1f, union=%v)\n", "dynamic scoring:", dynOut.FilesLost, dynOut.Score, dynOut.Union)
	if dynOut.FilesLost < baseOut.FilesLost {
		fmt.Println("\ndynamic scoring detected the small-file attack earlier, as §V-C anticipates.")
	}

	// The paper warns the adjustment "may have an adverse effect on false
	// positives" — verify the detailed benign workloads still pass.
	fmt.Println("\nfalse-positive check under dynamic scoring:")
	for _, name := range []string{"Microsoft Word", "Microsoft Excel", "Adobe Lightroom"} {
		w, ok := benign.ByName(name)
		if !ok {
			return fmt.Errorf("unknown workload %s", name)
		}
		out, err := dynamic.RunBenign(w)
		if err != nil {
			return err
		}
		fmt.Printf("  %-18s score %.1f flagged=%v\n", name, out.Score, out.Detected)
	}
	return nil
}
