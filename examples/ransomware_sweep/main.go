// Ransomware sweep: run one specimen of every family/class combination in
// the Table I roster against identical victim machines and print a
// per-family damage table — a miniature of the paper's headline experiment.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"cryptodrop/internal/corpus"
	"cryptodrop/internal/experiments"
	"cryptodrop/internal/ransomware"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	runner, err := experiments.NewRunner(corpus.Spec{
		Seed: 11, Files: 1200, Dirs: 120, SizeScale: 0.4,
	})
	if err != nil {
		return err
	}
	fmt.Printf("victim corpus: %d files, %d directories\n\n",
		len(runner.Manifest().Entries), runner.Manifest().DirCount)

	// One specimen per family/class combination.
	seen := make(map[string]bool)
	var sweep []ransomware.Sample
	for _, s := range ransomware.Roster(11) {
		key := s.Profile.Family + s.Profile.Class.String()
		if !seen[key] {
			seen[key] = true
			sweep = append(sweep, s)
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Sample\tClass\tTraversal\tDetected\tUnion\tFiles lost\tScore")
	for _, s := range sweep {
		out, err := runner.RunSample(s)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%v\t%v\t%v\t%d\t%.1f\n",
			s.Profile.Family, s.Profile.Class, s.Profile.Traversal,
			out.Detected, out.Union, out.FilesLost, out.Score)
	}
	return tw.Flush()
}
