// Quickstart: build a synthetic user-documents corpus, attach the
// CryptoDrop monitor, release a TeslaCrypt sample against it, and watch the
// early-warning system suspend the process after only a handful of files.
package main

import (
	"crypto/sha256"
	"fmt"
	"log"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/ransomware"
	"cryptodrop/internal/vfs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A victim machine: an in-memory filesystem holding the user's
	//    documents (1,000 files across 100 directories).
	fsys := vfs.New()
	manifest, err := corpus.Build(fsys, corpus.Spec{Seed: 7, Files: 1000, Dirs: 100, SizeScale: 0.5})
	if err != nil {
		return err
	}
	fmt.Printf("victim: %d documents under %s\n", len(manifest.Entries), manifest.Root)

	// 2. Attach CryptoDrop. The detection handler plays the role of the
	//    user notification dialog.
	procs := proc.NewTable()
	_, err = cryptodrop.NewMonitor(fsys, procs,
		cryptodrop.WithRoot(manifest.Root),
		cryptodrop.WithDetectionHandler(func(d cryptodrop.Detection) {
			fmt.Printf("\n!! CryptoDrop alert: PID %d crossed threshold %.0f with score %.1f (union=%v)\n",
				d.PID, d.Threshold, d.Score, d.Union)
			for ind, pts := range d.Indicators {
				fmt.Printf("   %-18v %.2f points\n", ind, pts)
			}
		}),
	)
	if err != nil {
		return err
	}

	// 3. Release a TeslaCrypt specimen (Class A: in-place encryption,
	//    depth-first traversal, AES-CTR, ransom notes per directory).
	var sample ransomware.Sample
	for _, s := range ransomware.Roster(7) {
		if s.Profile.Family == "TeslaCrypt" && s.Profile.Class == ransomware.ClassA {
			sample = s
			break
		}
	}
	pid := procs.Spawn(sample.ID)
	fmt.Printf("releasing %s as PID %d...\n", sample.ID, pid)
	res, err := sample.Run(fsys, pid, manifest.Root, func() bool { return procs.Suspended(pid) })
	if err != nil {
		return err
	}

	// 4. Damage report: verify the corpus hashes like §V-A does.
	lost := 0
	for _, e := range manifest.Entries {
		content, err := fsys.ReadFileRaw(e.Path)
		if err != nil || sha256Mismatch(content, e) {
			lost++
		}
	}
	fmt.Printf("\nsample suspended: %v — files lost: %d of %d (%.2f%%)\n",
		res.Suspended, lost, len(manifest.Entries), 100*float64(lost)/float64(len(manifest.Entries)))
	return nil
}

func sha256Mismatch(content []byte, e corpus.Entry) bool {
	return sha256.Sum256(content) != e.SHA256
}
