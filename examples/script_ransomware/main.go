// Script ransomware (§V-E): PoshCoder showed that ransomware "does not need
// to be a compiled binary" — it can be typed straight into an interpreter,
// morphing trivially past signature scanners. This example runs a
// PoshCoder-like script and a comment/identifier-morphed variant of it under
// the monitor: the source bytes differ completely (no signature survives),
// the behaviour — and the detection — are identical.
package main

import (
	"fmt"
	"log"

	"cryptodrop"
	"cryptodrop/internal/corpus"
	"cryptodrop/internal/proc"
	"cryptodrop/internal/script"
	"cryptodrop/internal/vfs"
)

const poshCoder = `
# PoshCoder-like encrypting ransomware
key k 16
targets *.docx *.pdf *.txt *.xlsx *.jpg *.csv
note HOW_TO_RECOVER.txt "ALL YOUR FILES ARE ENCRYPTED. PAY 1 BTC."
foreach f
  read $f buf
  encrypt buf k
  write $f buf
  rename $f $f.poshcoder
end
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	variants := []struct {
		name string
		src  string
	}{
		{"original script", poshCoder},
		{"morphed variant", script.Morph(poshCoder, 424242)},
	}
	for _, v := range variants {
		fsys := vfs.New()
		m, err := corpus.Build(fsys, corpus.Spec{Seed: 23, Files: 600, Dirs: 60, SizeScale: 0.3})
		if err != nil {
			return err
		}
		procs := proc.NewTable()
		mon, err := cryptodrop.NewMonitor(fsys, procs, cryptodrop.WithRoot(m.Root))
		if err != nil {
			return err
		}
		prog, err := script.Parse(v.src)
		if err != nil {
			return err
		}
		pid := procs.Spawn("powershell.exe")
		res, err := script.NewInterp(fsys, pid, m.Root, 23, func() bool { return procs.Suspended(pid) }).Run(prog)
		if err != nil {
			return err
		}
		verdict := "escaped"
		var score float64
		if rep, ok := mon.Report(pid); ok {
			score = rep.Score
			if rep.Detected {
				verdict = "DETECTED and suspended"
			}
		}
		fmt.Printf("%-16s %s after %d files (score %.1f, %d bytes of source)\n",
			v.name+":", verdict, res.FilesProcessed, score, len(v.src))
	}
	fmt.Println("\nboth variants perform the same data transformation, so CryptoDrop")
	fmt.Println("scores them identically — no signature required.")
	return nil
}
